package balance

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// mk builds a snapshot from (key, cost, mem, dest, hash) rows.
func mk(nd int, rows ...[5]int64) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	for _, r := range rows {
		s.Keys = append(s.Keys, stats.KeyStat{
			Key:  tuple.Key(r[0]),
			Cost: r[1],
			Freq: r[1],
			Mem:  r[2],
			Dest: int(r[3]),
			Hash: int(r[4]),
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

// paperExample is the running example of Fig. 4: d1 owns k1,k2,k5 with
// costs 7,4,5 (L=16); d2 owns k3,k4,k6 with costs 2,1,1 (L=4). The
// original routing table is {(k3,d2),(k5,d1)}, so h(k3)=d1... wait —
// in the figure the table routes k3 to d2 and k5 to d1, with their hash
// homes being the opposite instances.
func paperExample() *stats.Snapshot {
	return mk(2,
		[5]int64{1, 7, 7, 0, 0}, // k1 on d1
		[5]int64{2, 4, 4, 0, 0}, // k2 on d1
		[5]int64{5, 5, 5, 0, 1}, // k5 on d1 via routing entry (hash d2)
		[5]int64{3, 2, 2, 1, 0}, // k3 on d2 via routing entry (hash d1)
		[5]int64{4, 1, 1, 1, 1}, // k4 on d2
		[5]int64{6, 1, 1, 1, 1}, // k6 on d2
	)
}

func cfg0() Config { return Config{ThetaMax: 0, TableMax: 0, Beta: 1} }

func TestLLFDPaperExampleReachesPerfectBalance(t *testing.T) {
	plan := LLFD{}.Plan(paperExample(), cfg0())
	if plan.Loads[0] != 10 || plan.Loads[1] != 10 {
		t.Fatalf("LLFD loads = %v, want [10 10]", plan.Loads)
	}
	if plan.MaxTheta != 0 {
		t.Fatalf("MaxTheta = %v, want 0", plan.MaxTheta)
	}
}

func TestMinTablePaperExampleBalancesWithSmallTable(t *testing.T) {
	snap := paperExample()
	pLLFD := LLFD{}.Plan(snap, cfg0())
	pMT := MinTable{}.Plan(snap, cfg0())
	if pMT.Loads[0] != 10 || pMT.Loads[1] != 10 {
		t.Fatalf("MinTable loads = %v, want [10 10]", pMT.Loads)
	}
	if pMT.TableSize() > pLLFD.TableSize() {
		t.Fatalf("MinTable table %d entries > LLFD table %d entries; cleaning should shrink it",
			pMT.TableSize(), pLLFD.TableSize())
	}
	if pMT.TableSize() > 2 {
		t.Fatalf("MinTable table = %d entries, want ≤ 2 as in Fig. 4", pMT.TableSize())
	}
}

func TestSimpleBalancesPaperExample(t *testing.T) {
	plan := Simple{}.Plan(paperExample(), cfg0())
	if plan.Loads[0] != 10 || plan.Loads[1] != 10 {
		t.Fatalf("Simple loads = %v, want [10 10]", plan.Loads)
	}
}

// Every planner must produce an internally consistent plan: loads
// recomputed from the final assignment match, migration accounting
// matches the moved set, and table entries are exactly the hash
// exceptions.
func TestPlanInternalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planners := []Planner{Simple{}, LLFD{}, MinTable{}, MinMig{}, Mixed{}, MixedBF{}}
	for trial := 0; trial < 40; trial++ {
		snap := randomSnapshot(rng, 2+rng.Intn(8), 20+rng.Intn(200))
		cfg := Config{ThetaMax: float64(rng.Intn(20)) / 100, TableMax: 1 + rng.Intn(50), Beta: 1.5}
		for _, p := range planners {
			plan := p.Plan(snap, cfg)
			checkConsistency(t, snap, plan)
		}
	}
}

func checkConsistency(t *testing.T, snap *stats.Snapshot, plan *Plan) {
	t.Helper()
	// Final destination per key.
	loads := make([]int64, snap.ND)
	var mig int64
	movedSet := make(map[tuple.Key]bool, len(plan.Moved))
	for _, k := range plan.Moved {
		movedSet[k] = true
	}
	tableCount := 0
	for _, ks := range snap.Keys {
		d := ks.Hash
		if td, ok := plan.Table.Lookup(ks.Key); ok {
			d = td
			tableCount++
		}
		loads[d] += ks.Cost
		if d != ks.Dest {
			if !movedSet[ks.Key] {
				t.Fatalf("%s: key %d changed dest %d→%d but is not in Moved", plan.Algorithm, ks.Key, ks.Dest, d)
			}
			if plan.MoveDest[ks.Key] != d {
				t.Fatalf("%s: MoveDest[%d] = %d, final dest %d", plan.Algorithm, ks.Key, plan.MoveDest[ks.Key], d)
			}
			mig += ks.Mem
		} else if movedSet[ks.Key] {
			t.Fatalf("%s: key %d in Moved but destination unchanged", plan.Algorithm, ks.Key)
		}
	}
	if tableCount != plan.Table.Len() {
		t.Fatalf("%s: table has %d entries but only %d match snapshot keys", plan.Algorithm, plan.Table.Len(), tableCount)
	}
	if mig != plan.MigrationCost {
		t.Fatalf("%s: MigrationCost = %d, recomputed %d", plan.Algorithm, plan.MigrationCost, mig)
	}
	for d := range loads {
		if loads[d] != plan.Loads[d] {
			t.Fatalf("%s: Loads[%d] = %d, recomputed %d", plan.Algorithm, d, plan.Loads[d], loads[d])
		}
	}
	if got := stats.MaxTheta(loads); absF(got-plan.MaxTheta) > 1e-9 {
		t.Fatalf("%s: MaxTheta = %v, recomputed %v", plan.Algorithm, plan.MaxTheta, got)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// randomSnapshot draws keys with Zipf-ish costs, random mems, random
// current and hash destinations (so routing tables are non-trivially
// populated).
func randomSnapshot(rng *rand.Rand, nd, nk int) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	for i := 0; i < nk; i++ {
		cost := int64(1 + rng.Intn(100)/(1+rng.Intn(10)))
		s.Keys = append(s.Keys, stats.KeyStat{
			Key:  tuple.Key(i),
			Cost: cost,
			Freq: cost,
			Mem:  int64(1 + rng.Intn(30)),
			Dest: rng.Intn(nd),
			Hash: rng.Intn(nd),
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

// perfectSnapshot builds an instance admitting a perfect assignment:
// each of nd instances gets keys exactly summing to per-instance load
// L, every key strictly below L; then destinations are scrambled.
func perfectSnapshot(rng *rand.Rand, nd int, L int64) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	kid := 0
	for d := 0; d < nd; d++ {
		remaining := L
		for remaining > 0 {
			c := int64(1 + rng.Intn(int(L/2)))
			if c > remaining {
				c = remaining
			}
			// Keep every key strictly under L̄ (= L) as Theorem 1 requires.
			if c >= L {
				c = L - 1
			}
			s.Keys = append(s.Keys, stats.KeyStat{
				Key: tuple.Key(kid), Cost: c, Freq: c, Mem: c,
				Dest: rng.Intn(nd), Hash: rng.Intn(nd),
			})
			kid++
			remaining -= c
		}
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

// TestTheorem1LLFDBound checks Theorem 1: when a perfect assignment
// exists and c(k1) < L̄, LLFD's balance indicator is at most
// (1/3)(1 − 1/ND) for every instance.
func TestTheorem1LLFDBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		nd := 2 + rng.Intn(10)
		L := int64(60 + rng.Intn(200))
		snap := perfectSnapshot(rng, nd, L)
		plan := LLFD{}.Plan(snap, Config{ThetaMax: 0, Beta: 1})
		bound := (1.0 / 3.0) * (1 - 1/float64(nd))
		if plan.OverloadTheta > bound+1e-9 {
			t.Fatalf("trial %d: LLFD overload θ = %v exceeds Theorem 1 bound %v (nd=%d, L=%d)",
				trial, plan.OverloadTheta, bound, nd, L)
		}
	}
}

// TestTheorem2MixedMeetsSimpleBound checks Theorem 2's substance: the
// balance status Mixed generates satisfies the same (1/3)(1−1/ND)
// guarantee proved for Simple/LLFD, because Mixed's final phase runs
// LLFD over a search space at least as large. (The literal per-instance
// θMix ≤ θSim inequality does not survive heuristic tie-breaking; the
// paper's proof argues the bound, which is what we verify.)
func TestTheorem2MixedMeetsSimpleBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nd := 2 + rng.Intn(8)
		snap := perfectSnapshot(rng, nd, int64(60+rng.Intn(150)))
		cfg := Config{ThetaMax: 0, TableMax: 0, Beta: 1.5}
		pm := Mixed{}.Plan(snap, cfg)
		ps := Simple{}.Plan(snap, cfg)
		bound := (1.0 / 3.0) * (1 - 1/float64(nd))
		if pm.OverloadTheta > bound+1e-9 {
			t.Fatalf("trial %d: Mixed overload θ = %v exceeds bound %v (Simple: %v)",
				trial, pm.OverloadTheta, bound, ps.OverloadTheta)
		}
		if ps.OverloadTheta > bound+1e-9 {
			t.Fatalf("trial %d: Simple overload θ = %v exceeds bound %v", trial, ps.OverloadTheta, bound)
		}
	}
}

func TestMixedRespectsTableBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nd := 2 + rng.Intn(6)
		snap := randomSnapshot(rng, nd, 100+rng.Intn(300))
		// A bound at least as large as MinTable's result is always
		// achievable, since Mixed degenerates to MinTable at n = NA.
		mt := MinTable{}.Plan(snap, Config{ThetaMax: 0.1, Beta: 1.5})
		cfg := Config{ThetaMax: 0.1, TableMax: mt.TableSize() + 5, Beta: 1.5}
		pm := Mixed{}.Plan(snap, cfg)
		if pm.TableSize() > cfg.TableMax {
			t.Fatalf("trial %d: Mixed table %d exceeds Amax %d (MinTable needs %d)",
				trial, pm.TableSize(), cfg.TableMax, mt.TableSize())
		}
	}
}

func TestMixedBFNeverWorseMigrationThanMixedWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		nd := 2 + rng.Intn(6)
		snap := randomSnapshot(rng, nd, 80+rng.Intn(150))
		mt := MinTable{}.Plan(snap, Config{ThetaMax: 0.1, Beta: 1.5})
		cfg := Config{ThetaMax: 0.1, TableMax: mt.TableSize() + 10, Beta: 1.5}
		pm := Mixed{}.Plan(snap, cfg)
		pb := MixedBF{}.Plan(snap, cfg)
		if !pm.Feasible {
			continue
		}
		if pb.MigrationCost > pm.MigrationCost {
			t.Fatalf("trial %d: MixedBF migration %d > Mixed migration %d",
				trial, pb.MigrationCost, pm.MigrationCost)
		}
	}
}

func TestMinMigPrefersCheapStateOverMinTable(t *testing.T) {
	// Aggregate comparison over seeded trials: MinMig (no cleaning, γ
	// selection) should move less state than MinTable (full cleaning).
	rng := rand.New(rand.NewSource(3))
	var migMM, migMT int64
	for trial := 0; trial < 40; trial++ {
		snap := skewedSnapshot(rng, 5, 200, true)
		cfg := Config{ThetaMax: 0.08, Beta: 1.5}
		migMM += MinMig{}.Plan(snap, cfg).MigrationCost
		migMT += MinTable{}.Plan(snap, cfg).MigrationCost
	}
	if migMM >= migMT {
		t.Fatalf("aggregate MinMig migration %d not below MinTable %d", migMM, migMT)
	}
}

// skewedSnapshot concentrates load on instance 0 with Zipf-ish costs;
// when withTable is set, a fraction of keys carry routing entries.
func skewedSnapshot(rng *rand.Rand, nd, nk int, withTable bool) *stats.Snapshot {
	s := &stats.Snapshot{ND: nd}
	for i := 0; i < nk; i++ {
		cost := int64(1)
		if i < nk/10 {
			cost = int64(20 + rng.Intn(50))
		} else if i < nk/3 {
			cost = int64(2 + rng.Intn(8))
		}
		hash := rng.Intn(nd)
		dest := hash
		if withTable && rng.Intn(4) == 0 {
			dest = rng.Intn(nd)
		}
		// Skew: hot keys pile onto instance 0.
		if cost > 10 && rng.Intn(2) == 0 {
			dest = 0
		}
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: cost, Freq: cost,
			Mem: cost * int64(1+rng.Intn(3)), Dest: dest, Hash: hash,
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func TestPlannersMeetThetaOnFeasibleSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		snap := skewedSnapshot(rng, 4, 400, true)
		cfg := Config{ThetaMax: 0.08, Beta: 1.5}
		for _, p := range []Planner{MinTable{}, MinMig{}, Mixed{}} {
			plan := p.Plan(snap, cfg)
			// With 400 keys and max key ≪ L̄ the bound is comfortably
			// achievable; planners must keep every instance under Lmax.
			if plan.OverloadTheta > cfg.ThetaMax+1e-9 {
				t.Fatalf("trial %d: %s overload θ = %v > θmax %v", trial, p.Name(), plan.OverloadTheta, cfg.ThetaMax)
			}
		}
	}
}

func TestPlannersAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	snap := randomSnapshot(rng, 6, 300)
	cfg := Config{ThetaMax: 0.05, TableMax: 100, Beta: 1.5}
	for _, p := range []Planner{Simple{}, LLFD{}, MinTable{}, MinMig{}, Mixed{}, MixedBF{}} {
		a := p.Plan(snap, cfg)
		b := p.Plan(snap, cfg)
		if a.MigrationCost != b.MigrationCost || a.TableSize() != b.TableSize() || a.MaxTheta != b.MaxTheta {
			t.Fatalf("%s: non-deterministic plans: (%d,%d,%v) vs (%d,%d,%v)",
				p.Name(), a.MigrationCost, a.TableSize(), a.MaxTheta,
				b.MigrationCost, b.TableSize(), b.MaxTheta)
		}
		if len(a.Moved) != len(b.Moved) {
			t.Fatalf("%s: moved sets differ in size", p.Name())
		}
		for i := range a.Moved {
			if a.Moved[i] != b.Moved[i] {
				t.Fatalf("%s: moved sets differ", p.Name())
			}
		}
	}
}

func TestBalancedSnapshotNeedsNoMigration(t *testing.T) {
	// Perfectly balanced input with no routing entries: MinMig and
	// Mixed must not move anything.
	snap := mk(2,
		[5]int64{1, 5, 5, 0, 0},
		[5]int64{2, 5, 5, 0, 0},
		[5]int64{3, 5, 5, 1, 1},
		[5]int64{4, 5, 5, 1, 1},
	)
	for _, p := range []Planner{MinMig{}, Mixed{}} {
		plan := p.Plan(snap, Config{ThetaMax: 0.08, Beta: 1.5})
		if len(plan.Moved) != 0 {
			t.Fatalf("%s moved %d keys on balanced input", p.Name(), len(plan.Moved))
		}
		if plan.MigrationCost != 0 {
			t.Fatalf("%s migration cost %d on balanced input", p.Name(), plan.MigrationCost)
		}
	}
}

func TestSingleInstanceIsTrivialllyBalanced(t *testing.T) {
	snap := mk(1, [5]int64{1, 7, 7, 0, 0}, [5]int64{2, 3, 3, 0, 0})
	for _, p := range []Planner{Simple{}, LLFD{}, MinTable{}, MinMig{}, Mixed{}, MixedBF{}} {
		plan := p.Plan(snap, Config{ThetaMax: 0, Beta: 1})
		if plan.MaxTheta != 0 {
			t.Fatalf("%s: θ = %v on single instance", p.Name(), plan.MaxTheta)
		}
		if plan.MigrationCost != 0 {
			t.Fatalf("%s: migration on single instance", p.Name())
		}
	}
}

func TestGammaOrderingUnderBeta(t *testing.T) {
	// β=1: γ = c/S → key with cost 4/mem 4 ties cost 7/mem 7.
	if g1, g2 := gamma(7, 7, 1), gamma(4, 4, 1); g1 != g2 {
		t.Fatalf("β=1: γ(7,7)=%v ≠ γ(4,4)=%v", g1, g2)
	}
	// β=0.5 favours the smaller key (paper's k2-vs-k1 example).
	if g1, g2 := gamma(7, 7, 0.5), gamma(4, 4, 0.5); g1 >= g2 {
		t.Fatalf("β=0.5: want γ(4,4) > γ(7,7), got %v vs %v", g2, g1)
	}
	// Larger β favours high-cost keys.
	if g1, g2 := gamma(7, 7, 2), gamma(4, 4, 2); g1 <= g2 {
		t.Fatalf("β=2: want γ(7,7) > γ(4,4), got %v vs %v", g1, g2)
	}
	// Zero mem is clamped, no division blow-up.
	if g := gamma(5, 0, 1.5); g <= 0 {
		t.Fatalf("γ with zero mem = %v, want positive", g)
	}
}

func TestLargerBetaShrinksRoutingTable(t *testing.T) {
	// Appendix Fig. 20: larger β → MinMig migrates big-load keys →
	// fewer routing entries accumulate. Compare after repeated
	// adjustments on a drifting skewed workload.
	sizes := map[float64]int{}
	for _, beta := range []float64{1.0, 2.0} {
		rng := rand.New(rand.NewSource(31))
		snap := skewedSnapshot(rng, 5, 400, false)
		cfg := Config{ThetaMax: 0.02, Beta: beta}
		var table int
		for round := 0; round < 8; round++ {
			plan := MinMig{}.Plan(snap, cfg)
			table = plan.TableSize()
			// Re-skew: apply plan dests, then push fresh hot keys to
			// instance 0.
			applyPlanToSnapshot(snap, plan)
			reskew(rng, snap)
		}
		sizes[beta] = table
	}
	if sizes[2.0] > sizes[1.0] {
		t.Fatalf("β=2 table %d > β=1 table %d; larger β should shrink the table", sizes[2.0], sizes[1.0])
	}
}

func applyPlanToSnapshot(snap *stats.Snapshot, plan *Plan) {
	for i := range snap.Keys {
		ks := &snap.Keys[i]
		if d, ok := plan.Table.Lookup(ks.Key); ok {
			ks.Dest = d
		} else {
			ks.Dest = ks.Hash
		}
	}
}

func reskew(rng *rand.Rand, snap *stats.Snapshot) {
	for i := range snap.Keys {
		ks := &snap.Keys[i]
		if rng.Intn(10) == 0 {
			ks.Cost = int64(10 + rng.Intn(60))
			ks.Mem = ks.Cost
		}
	}
	stats.SortByCostDesc(snap.Keys)
}

func TestMigrationPct(t *testing.T) {
	p := &Plan{MigrationCost: 25}
	if got := p.MigrationPct(100); got != 25 {
		t.Fatalf("MigrationPct = %v, want 25", got)
	}
	if got := p.MigrationPct(0); got != 0 {
		t.Fatalf("MigrationPct with zero total = %v, want 0", got)
	}
}

func TestRoutedOrderSortsBySmallestMemory(t *testing.T) {
	snap := mk(2,
		[5]int64{1, 5, 9, 0, 1}, // routed, mem 9
		[5]int64{2, 5, 3, 1, 0}, // routed, mem 3
		[5]int64{3, 5, 1, 0, 0}, // not routed
	)
	idx := routedOrder(snap)
	if len(idx) != 2 {
		t.Fatalf("routedOrder found %d entries, want 2", len(idx))
	}
	if snap.Keys[idx[0]].Mem != 3 || snap.Keys[idx[1]].Mem != 9 {
		t.Fatalf("routedOrder not ascending by memory: %v, %v", snap.Keys[idx[0]].Mem, snap.Keys[idx[1]].Mem)
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.ThetaMax != 0.08 || c.TableMax != 3000 || c.Beta != 1.5 {
		t.Fatalf("DefaultConfig = %+v, want θmax=0.08, Amax=3000, β=1.5", c)
	}
}
