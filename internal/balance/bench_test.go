package balance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// benchSnapshot builds a Zipf-ish skewed snapshot of nk keys on nd
// instances, with a quarter of the keys holding routing entries.
func benchSnapshot(nd, nk int) *stats.Snapshot {
	rng := rand.New(rand.NewSource(1))
	s := &stats.Snapshot{ND: nd}
	for i := 0; i < nk; i++ {
		cost := int64(1)
		switch {
		case i < nk/100+1:
			cost = int64(200 + rng.Intn(400))
		case i < nk/10:
			cost = int64(10 + rng.Intn(40))
		default:
			cost = int64(1 + rng.Intn(4))
		}
		hash := rng.Intn(nd)
		dest := hash
		if rng.Intn(4) == 0 {
			dest = rng.Intn(nd)
		}
		s.Keys = append(s.Keys, stats.KeyStat{
			Key: tuple.Key(i), Cost: cost, Freq: cost,
			Mem: cost * int64(1+rng.Intn(3)), Dest: dest, Hash: hash,
		})
	}
	stats.SortByCostDesc(s.Keys)
	return s
}

func benchPlanner(b *testing.B, p Planner, nk int) {
	snap := benchSnapshot(10, nk)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Plan(snap, cfg)
	}
}

func BenchmarkSimple10k(b *testing.B)   { benchPlanner(b, Simple{}, 10000) }
func BenchmarkLLFD10k(b *testing.B)     { benchPlanner(b, LLFD{}, 10000) }
func BenchmarkMinTable10k(b *testing.B) { benchPlanner(b, MinTable{}, 10000) }
func BenchmarkMinMig10k(b *testing.B)   { benchPlanner(b, MinMig{}, 10000) }
func BenchmarkMixed10k(b *testing.B)    { benchPlanner(b, Mixed{}, 10000) }

func BenchmarkMixedScaling(b *testing.B) {
	for _, nk := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", nk), func(b *testing.B) {
			benchPlanner(b, Mixed{}, nk)
		})
	}
}

func BenchmarkMixedBFQuantized(b *testing.B) {
	benchPlanner(b, MixedBF{MaxTrials: 64}, 10000)
}
