package balance

import (
	"sort"

	"repro/internal/tuple"
)

// planState is the mutable working set shared by every planner: the
// per-key records, the per-instance load estimates L̂(d) and the
// candidate heap C.
type planState struct {
	nd    int
	loads []int64
	total int64
	avg   float64 // L̄ from the snapshot (fixed during planning)
	lmax  float64 // Lmax = (1+θmax)·L̄
	keys  []keyRec
	byIdx map[tuple.Key]int
	// byInst[d] holds indices of keys whose working destination is d.
	// Entries go stale when keys move; scans revalidate against cur.
	byInst [][]int
	// cand is the candidate set C as a max-heap ordered by cost
	// (Algorithm 1 pops keys in descending c(k)).
	cand costHeap
	// ops counts Adjust attempts, bounding pathological exchange
	// cascades; see forceAssign.
	ops int
	// scratch is reused across exchangeSet calls within one plan run to
	// avoid per-call slice churn.
	scratch []int
	// noAdjust disables exchangeable-set repair (ablation hook).
	noAdjust bool
}

// initInstanceIndex builds byInst from the current working destinations.
func (st *planState) initInstanceIndex() {
	st.byInst = make([][]int, st.nd)
	for i := range st.keys {
		if d := st.keys[i].cur; d >= 0 {
			st.byInst[d] = append(st.byInst[d], i)
		}
	}
}

// disassociate removes key i from its working instance and pushes it
// into the candidate set.
func (st *planState) disassociate(i int) {
	k := &st.keys[i]
	if k.cur < 0 {
		return
	}
	st.loads[k.cur] -= k.cost
	k.cur = -1
	st.cand.push(st, i)
}

// assign binds key i to instance d and updates the load estimate.
func (st *planState) assign(i, d int) {
	k := &st.keys[i]
	k.cur = d
	st.loads[d] += k.cost
	st.byInst[d] = append(st.byInst[d], i)
}

// instKeys returns the live key indices currently on instance d,
// compacting stale entries in place.
func (st *planState) instKeys(d int) []int {
	live := st.byInst[d][:0]
	for _, i := range st.byInst[d] {
		if st.keys[i].cur == d {
			live = append(live, i)
		}
	}
	st.byInst[d] = live
	return live
}

// overloaded returns instances with L̂(d) > Lmax.
func (st *planState) overloaded() []int {
	var out []int
	for d, l := range st.loads {
		if float64(l) > st.lmax {
			out = append(out, d)
		}
	}
	return out
}

// instancesByLoad returns instance ids ordered by ascending L̂(d)
// (Algorithm 1 line 4), with id tie-break for determinism.
func (st *planState) instancesByLoad() []int {
	ds := make([]int, st.nd)
	for i := range ds {
		ds[i] = i
	}
	sort.Slice(ds, func(a, b int) bool {
		if st.loads[ds[a]] != st.loads[ds[b]] {
			return st.loads[ds[a]] < st.loads[ds[b]]
		}
		return ds[a] < ds[b]
	})
	return ds
}

// prepare implements Phase II: walk every overloaded instance and
// disassociate keys — chosen by ψ — until the instance's estimated load
// drops to Lmax or it runs out of keys (§III, "Preparing").
func (st *planState) prepare(psi Criterion) {
	for _, d := range st.overloaded() {
		idxs := append([]int(nil), st.instKeys(d)...)
		sort.Slice(idxs, func(a, b int) bool {
			return psi.less(&st.keys[idxs[a]], &st.keys[idxs[b]])
		})
		for _, i := range idxs {
			if float64(st.loads[d]) <= st.lmax {
				break
			}
			st.disassociate(i)
		}
	}
}

// adjustBudgetFactor bounds the total number of Adjust attempts to
// adjustBudgetFactor·|K| + adjustBudgetFloor. Exchange cascades strictly
// decrease displaced-key costs, so the budget is a safety net rather
// than the usual exit path.
const (
	adjustBudgetFactor = 8
	adjustBudgetFloor  = 4096
)

// runLLFD implements Algorithm 1 (Least-Load Fit Decreasing): pop the
// costliest candidate, try instances in ascending load order, and let
// adjust repair re-overloading via exchangeable sets. Keys no instance
// accepts are force-assigned to the least-loaded instance so the
// algorithm always terminates with a total assignment.
func (st *planState) runLLFD(psi Criterion) {
	budget := adjustBudgetFactor*len(st.keys) + adjustBudgetFloor
	for st.cand.len() > 0 {
		i := st.cand.pop(st)
		placed := false
		if st.ops < budget {
			for _, d := range st.instancesByLoad() {
				st.ops++
				if st.adjust(i, d, psi) {
					st.assign(i, d)
					placed = true
					break
				}
			}
		}
		if !placed {
			st.forceAssign(i)
		}
	}
}

// forceAssign places key i on the least-loaded instance unconditionally.
func (st *planState) forceAssign(i int) {
	best, bestLoad := 0, st.loads[0]
	for d := 1; d < st.nd; d++ {
		if st.loads[d] < bestLoad {
			best, bestLoad = d, st.loads[d]
		}
	}
	st.assign(i, best)
}

// adjust is the paper's Adjust(k, d, C, θmax) (Algorithm 1 lines 10–20):
// accept if d stays within Lmax; otherwise try to construct an
// exchangeable set E of keys currently on d, each cheaper than k
// (condition ii), whose removal brings d within Lmax after k's arrival
// (condition iii). Members of E are disassociated into C on success.
func (st *planState) adjust(i, d int, psi Criterion) bool {
	k := &st.keys[i]
	if float64(st.loads[d])+float64(k.cost) <= st.lmax {
		return true
	}
	if st.noAdjust {
		return false
	}
	e := st.exchangeSet(i, d, psi)
	if e == nil {
		return false
	}
	for _, j := range e {
		st.disassociate(j)
	}
	return float64(st.loads[d])+float64(k.cost) <= st.lmax
}

// exchangeSet builds E for key i arriving at instance d: candidates are
// keys on d with cost strictly below c(k) (condition ii), taken in ψ
// order until the projected load fits under Lmax (condition iii).
// Returns nil when even the full eligible set cannot make room.
func (st *planState) exchangeSet(i, d int, psi Criterion) []int {
	k := &st.keys[i]
	need := float64(st.loads[d]) + float64(k.cost) - st.lmax
	if need <= 0 {
		return []int{}
	}
	eligible := st.scratch[:0]
	var eligibleSum int64
	for _, j := range st.instKeys(d) {
		if st.keys[j].cost < k.cost {
			eligible = append(eligible, j)
			eligibleSum += st.keys[j].cost
		}
	}
	st.scratch = eligible
	if float64(eligibleSum) < need {
		return nil
	}
	sort.Slice(eligible, func(a, b int) bool {
		return psi.less(&st.keys[eligible[a]], &st.keys[eligible[b]])
	})
	var out []int
	var got float64
	for _, j := range eligible {
		if got >= need {
			break
		}
		out = append(out, j)
		got += float64(st.keys[j].cost)
	}
	if got < need {
		return nil
	}
	return out
}

// costHeap is a binary max-heap of key indices ordered by descending
// cost (ties by ascending key for determinism).
type costHeap struct{ idx []int }

func (h *costHeap) len() int { return len(h.idx) }

func (h *costHeap) lessIdx(st *planState, a, b int) bool {
	ka, kb := &st.keys[h.idx[a]], &st.keys[h.idx[b]]
	if ka.cost != kb.cost {
		return ka.cost > kb.cost
	}
	return ka.key < kb.key
}

func (h *costHeap) push(st *planState, i int) {
	h.idx = append(h.idx, i)
	c := len(h.idx) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !h.lessIdx(st, c, p) {
			break
		}
		h.idx[c], h.idx[p] = h.idx[p], h.idx[c]
		c = p
	}
}

func (h *costHeap) pop(st *planState) int {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		if l >= len(h.idx) {
			break
		}
		m := l
		if r < len(h.idx) && h.lessIdx(st, r, l) {
			m = r
		}
		if !h.lessIdx(st, m, c) {
			break
		}
		h.idx[c], h.idx[m] = h.idx[m], h.idx[c]
		c = m
	}
	return top
}
