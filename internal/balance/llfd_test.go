package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// Direct tests of the LLFD machinery: the candidate heap, the
// exchangeable-set conditions, forced placement, and the ablation knobs.

func stateFor(t *testing.T, snap *stats.Snapshot, cfg Config) *planState {
	t.Helper()
	st := buildState(snap, cfg)
	st.initInstanceIndex()
	return st
}

func TestCostHeapPopsDescending(t *testing.T) {
	f := func(costs []uint16) bool {
		if len(costs) == 0 {
			return true
		}
		snap := &stats.Snapshot{ND: 1}
		for i, c := range costs {
			snap.Keys = append(snap.Keys, stats.KeyStat{Key: tuple.Key(i), Cost: int64(c) + 1})
		}
		st := buildState(snap, Config{ThetaMax: 0, Beta: 1})
		st.initInstanceIndex()
		for i := range st.keys {
			st.disassociate(i)
		}
		last := int64(1 << 30)
		for st.cand.len() > 0 {
			i := st.cand.pop(st)
			if st.keys[i].cost > last {
				return false
			}
			last = st.keys[i].cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassociateUpdatesLoads(t *testing.T) {
	snap := mk(2, [5]int64{1, 7, 7, 0, 0}, [5]int64{2, 3, 3, 0, 0})
	st := stateFor(t, snap, Config{ThetaMax: 0, Beta: 1})
	if st.loads[0] != 10 {
		t.Fatalf("initial load %d", st.loads[0])
	}
	st.disassociate(st.byIdx[1])
	if st.loads[0] != 3 {
		t.Fatalf("load after disassociate = %d, want 3", st.loads[0])
	}
	if st.keys[st.byIdx[1]].cur != -1 {
		t.Fatal("disassociated key still has a destination")
	}
	// Double disassociate is a no-op.
	st.disassociate(st.byIdx[1])
	if st.loads[0] != 3 {
		t.Fatal("double disassociate changed loads")
	}
}

func TestExchangeSetConditions(t *testing.T) {
	// d0 carries keys of cost 6, 3, 2 (L=11); placing a cost-5 key with
	// Lmax = 12 needs to displace ≥ 4 cost units using only keys
	// cheaper than 5 → {3, 2} (ψ = cost order picks 3 first, then 2).
	snap := mk(2,
		[5]int64{1, 6, 6, 0, 0},
		[5]int64{2, 3, 3, 0, 0},
		[5]int64{3, 2, 2, 0, 0},
		[5]int64{4, 5, 5, 1, 1}, // the arriving key, parked on d1
		[5]int64{5, 8, 8, 1, 1},
	)
	st := stateFor(t, snap, Config{ThetaMax: 0, Beta: 1})
	st.lmax = 12
	arriving := st.byIdx[4]
	e := st.exchangeSet(arriving, 0, ByCost)
	if e == nil {
		t.Fatal("no exchangeable set found")
	}
	var sum int64
	for _, j := range e {
		k := &st.keys[j]
		if k.cost >= 5 {
			t.Fatalf("condition (ii) violated: member cost %d ≥ 5", k.cost)
		}
		if k.cur != 0 {
			t.Fatalf("condition (i) violated: member on instance %d", k.cur)
		}
		sum += k.cost
	}
	if float64(st.loads[0])+5-float64(sum) > st.lmax {
		t.Fatal("condition (iii) violated: instance still overloaded")
	}
}

func TestExchangeSetImpossible(t *testing.T) {
	// All keys on d0 are ≥ the arriving cost: condition (ii) leaves no
	// candidates, so the set must be nil.
	snap := mk(2,
		[5]int64{1, 9, 9, 0, 0},
		[5]int64{2, 9, 9, 0, 0},
		[5]int64{3, 2, 2, 1, 1},
	)
	st := stateFor(t, snap, Config{ThetaMax: 0, Beta: 1})
	st.lmax = 10
	if e := st.exchangeSet(st.byIdx[3], 0, ByCost); e != nil {
		t.Fatalf("found impossible exchange set %v", e)
	}
}

func TestForceAssignFallsBackToLeastLoaded(t *testing.T) {
	// A key bigger than Lmax fits nowhere; LLFD must still terminate
	// with a total assignment on the least-loaded instance.
	snap := mk(2,
		[5]int64{1, 100, 100, 0, 0},
		[5]int64{2, 10, 10, 1, 1},
	)
	plan := LLFD{}.Plan(snap, Config{ThetaMax: 0, Beta: 1})
	total := plan.Loads[0] + plan.Loads[1]
	if total != 110 {
		t.Fatalf("assignment lost cost: loads %v", plan.Loads)
	}
}

func TestNoAdjustDegradesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var worse int
	const trials = 30
	for i := 0; i < trials; i++ {
		snap := perfectSnapshot(rng, 4, 120)
		cfg := Config{ThetaMax: 0, Beta: 1}
		with := LLFD{}.Plan(snap, cfg)
		without := LLFD{NoAdjust: true}.Plan(snap, cfg)
		if without.OverloadTheta > with.OverloadTheta {
			worse++
		}
		if with.OverloadTheta > without.OverloadTheta+1e-9 {
			// Adjust should never hurt; tolerate exact ties.
			t.Fatalf("trial %d: Adjust made balance worse (%v vs %v)",
				i, with.OverloadTheta, without.OverloadTheta)
		}
	}
	if worse == 0 {
		t.Fatal("NoAdjust never degraded balance across 30 trials; ablation is vacuous")
	}
}

func TestPrepareShedsOnlyOverloaded(t *testing.T) {
	snap := mk(2,
		[5]int64{1, 10, 10, 0, 0},
		[5]int64{2, 10, 10, 0, 0},
		[5]int64{3, 10, 10, 1, 1},
	)
	st := stateFor(t, snap, Config{ThetaMax: 0.2, Beta: 1})
	// L̄ = 15, Lmax = 18: d0 (20) overloaded, d1 (10) not.
	st.prepare(ByCost)
	if st.cand.len() == 0 {
		t.Fatal("prepare shed nothing from the overloaded instance")
	}
	for _, i := range st.cand.idx {
		if st.keys[i].orig != 0 {
			t.Fatalf("prepare shed key %d from non-overloaded instance", st.keys[i].key)
		}
	}
}

func TestInstancesByLoadOrdering(t *testing.T) {
	snap := mk(3,
		[5]int64{1, 30, 30, 0, 0},
		[5]int64{2, 10, 10, 1, 1},
		[5]int64{3, 20, 20, 2, 2},
	)
	st := stateFor(t, snap, Config{ThetaMax: 0, Beta: 1})
	order := st.instancesByLoad()
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("instancesByLoad = %v, want [1 2 0]", order)
	}
}

func TestInstKeysCompactsStaleEntries(t *testing.T) {
	snap := mk(2, [5]int64{1, 5, 5, 0, 0}, [5]int64{2, 5, 5, 0, 0})
	st := stateFor(t, snap, Config{ThetaMax: 0, Beta: 1})
	st.disassociate(st.byIdx[1])
	live := st.instKeys(0)
	if len(live) != 1 || st.keys[live[0]].key != 2 {
		t.Fatalf("instKeys = %v, want just key 2", live)
	}
}

func TestCleanPoliciesOrderRoutedKeys(t *testing.T) {
	snap := mk(2,
		[5]int64{1, 5, 9, 0, 1},
		[5]int64{2, 5, 3, 1, 0},
		[5]int64{3, 5, 6, 0, 1},
	)
	small := routedOrderBy(snap, CleanSmallestMem)
	if snap.Keys[small[0]].Mem != 3 || snap.Keys[small[2]].Mem != 9 {
		t.Fatal("CleanSmallestMem not ascending")
	}
	large := routedOrderBy(snap, CleanLargestMem)
	if snap.Keys[large[0]].Mem != 9 || snap.Keys[large[2]].Mem != 3 {
		t.Fatal("CleanLargestMem not descending")
	}
	byKey := routedOrderBy(snap, CleanByKey)
	for i := 1; i < len(byKey); i++ {
		if snap.Keys[byKey[i-1]].Key >= snap.Keys[byKey[i]].Key {
			t.Fatal("CleanByKey not key-ordered")
		}
	}
}

func TestCriterionLess(t *testing.T) {
	a := &keyRec{key: 1, cost: 10, g: 2}
	b := &keyRec{key: 2, cost: 5, g: 7}
	if !ByCost.less(a, b) {
		t.Fatal("ByCost must prefer the costlier key")
	}
	if !ByGamma.less(b, a) {
		t.Fatal("ByGamma must prefer the higher-γ key")
	}
	// γ tie falls through to cost.
	c := &keyRec{key: 3, cost: 8, g: 7}
	if !ByGamma.less(c, b) {
		t.Fatal("γ tie must break by cost")
	}
}

func TestQuickSortKeysSorts(t *testing.T) {
	f := func(xs []uint32) bool {
		ks := make([]tuple.Key, len(xs))
		for i, x := range xs {
			ks[i] = tuple.Key(x)
		}
		sortKeys(ks)
		for i := 1; i < len(ks); i++ {
			if ks[i-1] > ks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedBFStrideQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	snap := randomSnapshot(rng, 4, 500)
	cfg := Config{ThetaMax: 0.1, TableMax: 400, Beta: 1.5}
	full := MixedBF{}.Plan(snap, cfg)
	quant := MixedBF{MaxTrials: 8}.Plan(snap, cfg)
	// Quantized search explores a subset, so it can't beat the full
	// sweep, but it must still return a valid plan.
	if quant.MigrationCost < full.MigrationCost {
		t.Fatalf("quantized BF (%d) beat exhaustive BF (%d)", quant.MigrationCost, full.MigrationCost)
	}
	checkConsistency(t, snap, quant)
}

func TestEmptySnapshotPlansAreEmpty(t *testing.T) {
	snap := &stats.Snapshot{ND: 3}
	for _, p := range []Planner{Simple{}, LLFD{}, MinTable{}, MinMig{}, Mixed{}, MixedBF{}} {
		plan := p.Plan(snap, Config{ThetaMax: 0.1, Beta: 1.5})
		if len(plan.Moved) != 0 || plan.TableSize() != 0 {
			t.Fatalf("%s produced work from an empty snapshot", p.Name())
		}
	}
}

func TestZeroCostKeysDoNotBreakPlanning(t *testing.T) {
	snap := mk(2,
		[5]int64{1, 0, 5, 0, 0},
		[5]int64{2, 10, 5, 0, 0},
		[5]int64{3, 0, 5, 1, 1},
	)
	plan := Mixed{}.Plan(snap, Config{ThetaMax: 0.1, Beta: 1.5})
	checkConsistency(t, snap, plan)
}
