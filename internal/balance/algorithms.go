package balance

import (
	"sort"
	"time"

	"repro/internal/stats"
)

// --- Simple (Appendix, Algorithm 5) -----------------------------------

// Simple disassociates every key and re-packs the full key set by
// descending cost onto the least-loaded instance (classic FFD flavour).
// It ignores both the routing-table and migration budgets; the paper
// uses it as the analysis vehicle for Theorem 1.
type Simple struct{}

// Name implements Planner.
func (Simple) Name() string { return "Simple" }

// Plan implements Planner.
func (Simple) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	st := buildState(snap, cfg)
	st.initInstanceIndex()
	for i := range st.keys {
		st.disassociate(i)
	}
	// Pure least-load-first packing: Algorithm 5 has no Adjust step, so
	// pop candidates in cost order and always take the least-loaded
	// instance.
	for st.cand.len() > 0 {
		i := st.cand.pop(st)
		st.forceAssign(i)
	}
	return st.finish("Simple", snap, start, cfg)
}

// --- LLFD as a standalone planner --------------------------------------

// LLFD exposes Algorithm 1 directly: Phase II selection by ψ = cost on
// the current assignment (no cleaning), then the LLFD subroutine. The
// paper excludes it from the system experiments because it cannot bound
// the routing-table size, but it anchors Theorem 1's property tests.
type LLFD struct {
	// Psi selects the candidate/exchange ordering; zero value is ByCost.
	Psi Criterion
	// NoAdjust disables the exchangeable-set repair (ablation hook):
	// keys are accepted only when they fit under Lmax outright, so the
	// re-overloading problem of §III-A goes unrepaired.
	NoAdjust bool
}

// Name implements Planner.
func (LLFD) Name() string { return "LLFD" }

// Plan implements Planner.
func (l LLFD) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	st := buildState(snap, cfg)
	st.noAdjust = l.NoAdjust
	st.initInstanceIndex()
	st.prepare(l.Psi)
	st.runLLFD(l.Psi)
	return st.finish("LLFD", snap, start, cfg)
}

// --- MinTable (Algorithm 2) --------------------------------------------

// MinTable erases the whole routing table in Phase I (moving every
// routed key back to its hash destination), then rebalances with
// ψ = highest cost first, which minimizes the number of entries the new
// table needs at the price of heavy state migration.
type MinTable struct{}

// Name implements Planner.
func (MinTable) Name() string { return "MinTable" }

// Plan implements Planner.
func (MinTable) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	st := buildState(snap, cfg)
	// Phase I: move back all keys in A. The move is virtual — only the
	// working destination changes; migration is charged at finish time
	// if the final destination really differs from orig.
	for i := range st.keys {
		k := &st.keys[i]
		if k.cur != k.hash {
			st.loads[k.cur] -= k.cost
			k.cur = k.hash
			st.loads[k.hash] += k.cost
		}
	}
	st.initInstanceIndex()
	st.prepare(ByCost)
	st.runLLFD(ByCost)
	return st.finish("MinTable", snap, start, cfg)
}

// --- MinMig (Algorithm 3) ----------------------------------------------

// MinMig skips cleaning entirely and selects migration candidates by the
// migration-priority index γ(k,w) = c(k)^β / S(k,w), so the keys moved
// are those carrying the most computation per unit of state. The table
// size is uncontrolled (it converges to (ND−1)/ND·K over many
// adjustments, Fig. 18).
type MinMig struct{}

// Name implements Planner.
func (MinMig) Name() string { return "MinMig" }

// Plan implements Planner.
func (MinMig) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	st := buildState(snap, cfg)
	st.initInstanceIndex()
	st.prepare(ByGamma)
	st.runLLFD(ByGamma)
	return st.finish("MinMig", snap, start, cfg)
}

// --- Mixed (Algorithm 4) -----------------------------------------------

// CleanPolicy selects the Phase I cleaning criterion η for Mixed — an
// ablation hook around the paper's choice of "smallest memory first".
type CleanPolicy int

const (
	// CleanSmallestMem is the paper's η: move back the routed keys
	// whose windowed state is cheapest to abandon.
	CleanSmallestMem CleanPolicy = iota
	// CleanLargestMem inverts η (worst case for migration volume).
	CleanLargestMem
	// CleanByKey cleans in key order — effectively arbitrary with
	// respect to cost and memory.
	CleanByKey
)

// Mixed combines MinTable's cleaning with MinMig's migration-aware
// selection: clean the n routing-table entries with the smallest
// windowed memory S(k,w) (criterion η), run MinMig's phases, and grow n
// by the table overflow until |A′| ≤ Amax. n therefore starts at 0
// (pure MinMig) and only pays cleaning when the table budget forces it.
type Mixed struct {
	// Clean overrides the cleaning criterion (ablation hook); the zero
	// value is the paper's smallest-memory-first.
	Clean CleanPolicy
}

// Name implements Planner.
func (Mixed) Name() string { return "Mixed" }

// Plan implements Planner.
func (m Mixed) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	trials := cfg.MaxTrials
	if trials <= 0 {
		trials = 32
	}
	// Keys currently occupying routing-table entries, ordered by the
	// cleaning criterion η (paper: smallest S(k,w) first).
	routed := routedOrderBy(snap, m.Clean)
	n := 0
	var plan *Plan
	for t := 0; t < trials; t++ {
		st := buildState(snap, cfg)
		cleanN(st, routed, n)
		st.initInstanceIndex()
		st.prepare(ByGamma)
		st.runLLFD(ByGamma)
		plan = st.finish("Mixed", snap, start, cfg)
		if cfg.TableMax <= 0 {
			break
		}
		over := plan.Table.Len() - cfg.TableMax
		if over <= 0 {
			break
		}
		// Algorithm 4 line 10 retries with the overused entry count; we
		// accumulate so successive trials monotonically clean more and
		// the loop cannot cycle.
		n += over
		if n > len(routed) {
			n = len(routed)
		}
	}
	plan.GenTime = time.Since(start)
	return plan
}

// --- MixedBF -------------------------------------------------------------

// MixedBF is the brute-force spectrum search: it evaluates cleaning
// depths n ∈ [0, NA] and keeps the feasible plan with the smallest
// migration cost (table size breaking ties). The paper uses it to show
// the heuristic trial loop loses little while being far faster
// (Fig. 12). MaxTrials quantizes the sweep when the routing table is
// huge (stride ⌈NA/MaxTrials⌉ instead of 1) so the search stays merely
// slow rather than unbounded; 0 means exhaustive.
type MixedBF struct {
	MaxTrials int
}

// Name implements Planner.
func (MixedBF) Name() string { return "MixedBF" }

// Plan implements Planner.
func (bf MixedBF) Plan(snap *stats.Snapshot, cfg Config) *Plan {
	start := time.Now()
	routed := routedOrder(snap)
	stride := 1
	if bf.MaxTrials > 0 && len(routed) > bf.MaxTrials {
		stride = (len(routed) + bf.MaxTrials - 1) / bf.MaxTrials
	}
	var best *Plan
	for n := 0; n <= len(routed); n += stride {
		st := buildState(snap, cfg)
		cleanN(st, routed, n)
		st.initInstanceIndex()
		st.prepare(ByGamma)
		st.runLLFD(ByGamma)
		p := st.finish("MixedBF", snap, start, cfg)
		if better(p, best, cfg) {
			best = p
		}
	}
	if best == nil { // len(routed) == 0 loop still runs once; defensive
		st := buildState(snap, cfg)
		st.initInstanceIndex()
		st.prepare(ByGamma)
		st.runLLFD(ByGamma)
		best = st.finish("MixedBF", snap, start, cfg)
	}
	best.GenTime = time.Since(start)
	return best
}

// better reports whether p should replace best under MixedBF's
// preference: feasibility first, then migration cost, then table size.
func better(p, best *Plan, cfg Config) bool {
	if best == nil {
		return true
	}
	pOK := cfg.TableMax <= 0 || p.Table.Len() <= cfg.TableMax
	bOK := cfg.TableMax <= 0 || best.Table.Len() <= cfg.TableMax
	if pOK != bOK {
		return pOK
	}
	if p.MigrationCost != best.MigrationCost {
		return p.MigrationCost < best.MigrationCost
	}
	return p.Table.Len() < best.Table.Len()
}

// routedOrder returns snapshot indices of keys currently holding
// routing-table entries (Dest ≠ Hash), ordered by smallest memory first
// — the Mixed algorithm's cleaning criterion η.
func routedOrder(snap *stats.Snapshot) []int {
	return routedOrderBy(snap, CleanSmallestMem)
}

// routedOrderBy is routedOrder under an explicit cleaning policy.
func routedOrderBy(snap *stats.Snapshot, policy CleanPolicy) []int {
	var idx []int
	for i, ks := range snap.Keys {
		if ks.Routed() {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := snap.Keys[idx[a]], snap.Keys[idx[b]]
		switch policy {
		case CleanLargestMem:
			if ka.Mem != kb.Mem {
				return ka.Mem > kb.Mem
			}
		case CleanByKey:
			// fall through to the key tie-break below
		default: // CleanSmallestMem
			if ka.Mem != kb.Mem {
				return ka.Mem < kb.Mem
			}
		}
		return ka.Key < kb.Key
	})
	return idx
}

// cleanN virtually moves the first n routed keys (in η order) back to
// their hash destinations in the working state.
func cleanN(st *planState, routed []int, n int) {
	if n > len(routed) {
		n = len(routed)
	}
	for _, i := range routed[:n] {
		k := &st.keys[i]
		if k.cur != k.hash {
			st.loads[k.cur] -= k.cost
			k.cur = k.hash
			st.loads[k.hash] += k.cost
		}
	}
}
