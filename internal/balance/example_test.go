package balance_test

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/stats"
)

// ExampleMixed plans a rebalance for the running example of the
// paper's Fig. 4: instance 0 carries 16 cost units, instance 1 only 4.
func ExampleMixed() {
	snap := &stats.Snapshot{ND: 2, Keys: []stats.KeyStat{
		{Key: 1, Cost: 7, Mem: 7, Dest: 0, Hash: 0},
		{Key: 2, Cost: 4, Mem: 4, Dest: 0, Hash: 0},
		{Key: 5, Cost: 5, Mem: 5, Dest: 0, Hash: 1}, // routed to 0
		{Key: 3, Cost: 2, Mem: 2, Dest: 1, Hash: 0}, // routed to 1
		{Key: 4, Cost: 1, Mem: 1, Dest: 1, Hash: 1},
		{Key: 6, Cost: 1, Mem: 1, Dest: 1, Hash: 1},
	}}
	stats.SortByCostDesc(snap.Keys)

	plan := balance.Mixed{}.Plan(snap, balance.Config{ThetaMax: 0, Beta: 1.5})
	fmt.Println("loads:", plan.Loads[0], plan.Loads[1])
	fmt.Println("balanced:", plan.OverloadTheta == 0)
	// Output:
	// loads: 10 10
	// balanced: true
}

// ExamplePlan_MigrationPct shows the migration-cost accounting.
func ExamplePlan_MigrationPct() {
	p := &balance.Plan{MigrationCost: 12}
	fmt.Printf("%.0f%%\n", p.MigrationPct(120))
	// Output: 10%
}
