package balance

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tuple"
)

// FuzzPlannersConsistency throws arbitrary byte-derived snapshots at
// every planner and checks the structural invariants: total assignment,
// accurate migration accounting, loads that re-derive from the table.
func FuzzPlannersConsistency(f *testing.F) {
	f.Add([]byte{10, 3, 200, 7, 1, 1, 90, 4}, uint8(3), uint8(10))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(2), uint8(0))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(5), uint8(50))
	f.Fuzz(func(t *testing.T, raw []byte, ndRaw, thetaRaw uint8) {
		if len(raw) < 4 {
			return
		}
		nd := int(ndRaw%8) + 2
		theta := float64(thetaRaw%100) / 100
		snap := &stats.Snapshot{ND: nd}
		for i := 0; i+3 < len(raw) && i < 400; i += 4 {
			snap.Keys = append(snap.Keys, stats.KeyStat{
				Key:  tuple.Key(i),
				Cost: int64(raw[i]) + 1,
				Mem:  int64(raw[i+1]) + 1,
				Dest: int(raw[i+2]) % nd,
				Hash: int(raw[i+3]) % nd,
			})
		}
		stats.SortByCostDesc(snap.Keys)
		cfg := Config{ThetaMax: theta, TableMax: 1 + int(thetaRaw), Beta: 1.5}
		for _, p := range []Planner{Simple{}, LLFD{}, MinTable{}, MinMig{}, Mixed{}, MixedBF{MaxTrials: 16}} {
			plan := p.Plan(snap, cfg)
			verifyPlan(t, p.Name(), snap, plan)
		}
	})
}

// verifyPlan re-derives every plan quantity from the snapshot and the
// routing table and compares.
func verifyPlan(t *testing.T, name string, snap *stats.Snapshot, plan *Plan) {
	t.Helper()
	loads := make([]int64, snap.ND)
	var mig int64
	moved := make(map[tuple.Key]bool, len(plan.Moved))
	for _, k := range plan.Moved {
		moved[k] = true
	}
	for _, ks := range snap.Keys {
		d := ks.Hash
		if td, ok := plan.Table.Lookup(ks.Key); ok {
			d = td
		}
		if d < 0 || d >= snap.ND {
			t.Fatalf("%s: key %d assigned out of range: %d", name, ks.Key, d)
		}
		loads[d] += ks.Cost
		if d != ks.Dest {
			if !moved[ks.Key] {
				t.Fatalf("%s: key %d silently moved %d→%d", name, ks.Key, ks.Dest, d)
			}
			mig += ks.Mem
		} else if moved[ks.Key] {
			t.Fatalf("%s: key %d reported moved but stayed", name, ks.Key)
		}
	}
	if mig != plan.MigrationCost {
		t.Fatalf("%s: migration %d, recomputed %d", name, plan.MigrationCost, mig)
	}
	for d := range loads {
		if loads[d] != plan.Loads[d] {
			t.Fatalf("%s: loads[%d] %d, recomputed %d", name, d, plan.Loads[d], loads[d])
		}
	}
}
