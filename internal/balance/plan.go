// Package balance implements the paper's rebalance planners (§III): the
// LLFD subroutine with its Adjust/exchangeable-set repair, the Simple
// appendix baseline, and the MinTable, MinMig, Mixed and MixedBF
// algorithms that construct a new assignment function F′ from one
// interval's statistics snapshot.
//
// All planners are pure functions over a stats.Snapshot: they never
// touch live engine state. The engine applies the returned Plan through
// the controller's pause/migrate/resume protocol.
package balance

import (
	"math"
	"time"

	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Config carries the optimization-problem parameters of Eq. 3 plus the
// algorithm knobs from Tab. II.
type Config struct {
	// ThetaMax is the imbalance tolerance θmax: instance d is considered
	// balanced when L(d) ≤ (1+θmax)·L̄.
	ThetaMax float64
	// TableMax is Amax, the routing-table size bound. ≤ 0 means
	// unbounded (used by LLFD/MinMig, which the paper notes cannot
	// control table size).
	TableMax int
	// Beta is the migration-priority exponent β in γ(k,w) = c(k)^β / S(k,w).
	Beta float64
	// MaxTrials bounds the Mixed algorithm's cleaning retries; ≤ 0
	// selects a sane default.
	MaxTrials int
}

// DefaultConfig mirrors the bold defaults of Tab. II.
func DefaultConfig() Config {
	return Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5, MaxTrials: 32}
}

// Plan is the outcome of one planner run: the new routing table A′, the
// migration set Δ(F, F′) and the cost/balance accounting the evaluation
// section reports.
type Plan struct {
	Algorithm string
	// Table is A′: every key whose final destination differs from its
	// hash default.
	Table *route.Table
	// Moved is Δ(F, F′): keys whose destination changed versus the
	// previous assignment, i.e. the keys whose state must migrate.
	Moved []tuple.Key
	// MoveDest gives the new destination for each key in Moved.
	MoveDest map[tuple.Key]int
	// MigrationCost is M = Σ_{k ∈ Δ} S(k, w).
	MigrationCost int64
	// Loads is the planner's estimate of L(d) under F′.
	Loads []int64
	// MaxTheta is max_d θ(d) = |L(d)−L̄|/L̄ under the estimated loads
	// (two-sided, as defined in §II-A; reported in figures).
	MaxTheta float64
	// OverloadTheta is max_d (L(d)−L̄)/L̄, the one-sided quantity the
	// Lmax constraint bounds; feasibility is judged against it because
	// underload can be unfixable by key placement alone.
	OverloadTheta float64
	// Feasible reports whether both constraints of Eq. 3 hold
	// (overload ≤ θmax and |A′| ≤ Amax where Amax > 0).
	Feasible bool
	// GenTime is the wall-clock planning latency ("average generation
	// time" in Figs. 8–12).
	GenTime time.Duration
}

// TableSize returns |A′|.
func (p *Plan) TableSize() int {
	if p.Table == nil {
		return 0
	}
	return p.Table.Len()
}

// MigrationPct returns the migration cost as a percentage of the total
// state Σ_k S(k,w) in the snapshot, the unit of the paper's
// migration-cost figures.
func (p *Plan) MigrationPct(totalMem int64) float64 {
	if totalMem <= 0 {
		return 0
	}
	return 100 * float64(p.MigrationCost) / float64(totalMem)
}

// gamma computes the migration priority index γ(k, w) = c(k)^β / S(k, w)
// (§III-B). Keys with no recorded state get S treated as 1 so that
// stateless keys are maximally attractive to move.
func gamma(cost, mem int64, beta float64) float64 {
	s := float64(mem)
	if s < 1 {
		s = 1
	}
	if cost <= 0 {
		return 0
	}
	return math.Pow(float64(cost), beta) / s
}

// Criterion orders candidate keys for Phase II selection and for the
// exchangeable-set construction inside Adjust — the paper's ψ.
type Criterion int

const (
	// ByCost is "highest computation cost first" (MinTable's ψ).
	ByCost Criterion = iota
	// ByGamma is "largest γ(k,w) first" (MinMig's and Mixed's ψ).
	ByGamma
)

// keyRec is the planner's mutable view of one key.
type keyRec struct {
	key  tuple.Key
	cost int64
	mem  int64
	g    float64 // cached γ under the run's β
	orig int     // F(k): destination before planning (migration baseline)
	hash int     // h(k)
	cur  int     // working destination; -1 while in the candidate set
}

// less orders a before b under the criterion (descending preference).
func (c Criterion) less(a, b *keyRec) bool {
	switch c {
	case ByGamma:
		if a.g != b.g {
			return a.g > b.g
		}
	default:
	}
	if a.cost != b.cost {
		return a.cost > b.cost
	}
	return a.key < b.key
}

// Planner is the common interface of all rebalance algorithms.
type Planner interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Plan constructs F′ from the snapshot under the configuration.
	Plan(snap *stats.Snapshot, cfg Config) *Plan
}

// Snapshot conveniences shared by the drivers.

func buildState(snap *stats.Snapshot, cfg Config) *planState {
	st := &planState{
		nd:    snap.ND,
		loads: make([]int64, snap.ND),
		keys:  make([]keyRec, len(snap.Keys)),
		byIdx: make(map[tuple.Key]int, len(snap.Keys)),
	}
	for i, ks := range snap.Keys {
		st.keys[i] = keyRec{
			key:  ks.Key,
			cost: ks.Cost,
			mem:  ks.Mem,
			g:    gamma(ks.Cost, ks.Mem, cfg.Beta),
			orig: ks.Dest,
			hash: ks.Hash,
			cur:  ks.Dest,
		}
		st.byIdx[ks.Key] = i
		st.loads[ks.Dest] += ks.Cost
		st.total += ks.Cost
	}
	st.avg = float64(st.total) / float64(st.nd)
	st.lmax = (1 + cfg.ThetaMax) * st.avg
	return st
}

// finish converts the working state into a Plan.
func (st *planState) finish(name string, snap *stats.Snapshot, started time.Time, cfg Config) *Plan {
	p := &Plan{
		Algorithm: name,
		Table:     route.NewTable(),
		MoveDest:  make(map[tuple.Key]int),
		Loads:     append([]int64(nil), st.loads...),
	}
	for i := range st.keys {
		k := &st.keys[i]
		if k.cur != k.hash {
			p.Table.Put(k.key, k.cur)
		}
		if k.cur != k.orig {
			p.Moved = append(p.Moved, k.key)
			p.MoveDest[k.key] = k.cur
			p.MigrationCost += k.mem
		}
	}
	sortKeys(p.Moved)
	p.MaxTheta = stats.MaxTheta(p.Loads)
	p.OverloadTheta = stats.OverloadTheta(p.Loads)
	p.Feasible = p.OverloadTheta <= cfg.ThetaMax+thetaSlack
	if cfg.TableMax > 0 && p.Table.Len() > cfg.TableMax {
		p.Feasible = false
	}
	p.GenTime = time.Since(started)
	return p
}

// thetaSlack absorbs integer-rounding: with integer costs, exact θmax
// feasibility can be off by less than one tuple's weight.
const thetaSlack = 1e-9

func sortKeys(ks []tuple.Key) {
	// insertion-free: small helper over sort.Slice kept local to avoid
	// importing sort in every file.
	if len(ks) < 2 {
		return
	}
	quickSortKeys(ks)
}

func quickSortKeys(ks []tuple.Key) {
	if len(ks) < 12 {
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		return
	}
	pivot := ks[len(ks)/2]
	lo, hi := 0, len(ks)-1
	for lo <= hi {
		for ks[lo] < pivot {
			lo++
		}
		for ks[hi] > pivot {
			hi--
		}
		if lo <= hi {
			ks[lo], ks[hi] = ks[hi], ks[lo]
			lo++
			hi--
		}
	}
	quickSortKeys(ks[:hi+1])
	quickSortKeys(ks[lo:])
}
