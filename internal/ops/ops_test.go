package ops

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/hashring"
	"repro/internal/pkgpart"
	"repro/internal/route"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func asgRouter(nd int) *engine.AssignmentRouter {
	return engine.NewAssignmentRouter(route.NewAssignment(route.NewTable(), hashring.New(nd, 0)))
}

func TestWordCountCountsPerKey(t *testing.T) {
	fleet := NewWordCountFleet()
	st := engine.NewStage("wc", 2, fleet.Factory, 1, asgRouter(2))
	defer st.Stop()
	for i := 0; i < 90; i++ {
		st.Feed(tuple.New(tuple.Key(i%3), "w"))
	}
	st.Barrier()
	for k := tuple.Key(0); k < 3; k++ {
		if got := fleet.TotalCount(k); got != 30 {
			t.Fatalf("count(%d) = %d, want 30", k, got)
		}
	}
}

func TestWordCountCorrectAcrossMigration(t *testing.T) {
	fleet := NewWordCountFleet()
	st := engine.NewStage("wc", 2, fleet.Factory, 2, asgRouter(2))
	defer st.Stop()
	hot := tuple.Key(5)
	for i := 0; i < 100; i++ {
		st.Feed(tuple.New(hot, "w"))
	}
	st.Barrier()
	st.EndInterval(0)
	// Force-migrate the hot key to the other instance.
	src := st.AssignmentRouter().Assignment().Dest(hot)
	dst := 1 - src
	tab := route.NewTable()
	tab.Put(hot, dst)
	st.ApplyPlan(&balance.Plan{Table: tab, Moved: []tuple.Key{hot}, MoveDest: map[tuple.Key]int{hot: dst}})
	for i := 0; i < 50; i++ {
		st.Feed(tuple.New(hot, "w"))
	}
	st.Barrier()
	if got := fleet.TotalCount(hot); got != 150 {
		t.Fatalf("total across migration = %d, want 150", got)
	}
	// Windowed state followed the key.
	if st.StoreOf(src).Size(hot) != 0 {
		t.Fatal("state left behind on source")
	}
	if st.StoreOf(dst).Size(hot) != 150 {
		t.Fatalf("dest window = %d, want 150", st.StoreOf(dst).Size(hot))
	}
}

func TestSelfJoinMatchCount(t *testing.T) {
	// n tuples of one key in a window produce n(n−1)/2 pairs.
	fleet := NewSelfJoinFleet(false)
	st := engine.NewStage("join", 1, fleet.Factory, 3, asgRouter(1))
	defer st.Stop()
	for i := 0; i < 10; i++ {
		st.Feed(tuple.New(1, i))
	}
	st.Barrier()
	if got := fleet.TotalMatches(); got != 45 {
		t.Fatalf("matches = %d, want 45", got)
	}
}

func TestSelfJoinWindowLimitsMatches(t *testing.T) {
	fleet := NewSelfJoinFleet(false)
	st := engine.NewStage("join", 1, fleet.Factory, 1, asgRouter(1))
	defer st.Stop()
	st.Feed(tuple.New(1, "a"))
	st.Barrier()
	st.EndInterval(0)
	st.EndInterval(1) // the first tuple falls out of the w=1 window
	st.Feed(tuple.New(1, "b"))
	st.Barrier()
	if got := fleet.TotalMatches(); got != 0 {
		t.Fatalf("matches across expired window = %d, want 0", got)
	}
}

func TestSelfJoinEmitsPairs(t *testing.T) {
	fleet := NewSelfJoinFleet(true)
	st := engine.NewStage("join", 1, fleet.Factory, 2, asgRouter(1))
	defer st.Stop()
	st.Feed(tuple.New(1, "a"))
	st.Feed(tuple.New(1, "b"))
	st.Feed(tuple.New(1, "c"))
	st.Barrier()
	out := st.DrainEmitted()
	if len(out) != 3 { // 0 + 1 + 2
		t.Fatalf("emitted %d join tuples, want 3", len(out))
	}
	for _, o := range out {
		if o.Stream != "J" {
			t.Fatal("join output not tagged")
		}
	}
}

func TestPKGPartialMergePipelineCorrectness(t *testing.T) {
	// Split-key counting: upstream PKG router splits keys, partial
	// counts flush per interval, merge stage recombines — totals must
	// equal key grouping's.
	parts := NewPartialCountFleet()
	merges := NewMergeCountFleet()
	s0 := engine.NewStage("partial", 3, parts.Factory, 1,
		engine.PKGRouter{R: pkgpart.NewRouter(3)})
	s1 := engine.NewStage("merge", 2, merges.Factory, 1, asgRouter(2))
	var n uint64
	e := engine.New(func() tuple.Tuple {
		n++
		return tuple.New(tuple.Key(n%7), nil)
	}, engine.Config{Window: 1, Budget: 700, MaxPendingFactor: 2, MigrationFactor: 1}, s0, s1)
	defer e.Stop()
	e.Run(3)
	for k := tuple.Key(0); k < 7; k++ {
		if got := merges.TotalCount(k); got != 300 {
			t.Fatalf("merged count(%d) = %d, want 300", k, got)
		}
	}
	// The hot-key split actually happened: some key must appear on two
	// partial instances.
	split := false
	for k := tuple.Key(0); k < 7; k++ {
		owners := 0
		for _, op := range parts.Instances {
			_ = op
		}
		d1, d2 := pkgpart.NewRouter(3).Candidates(k)
		if d1 != d2 {
			owners = 2
		}
		if owners == 2 {
			split = true
		}
	}
	if !split {
		t.Fatal("no key had two candidates")
	}
}

func TestQ5PipelineProducesRevenue(t *testing.T) {
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 2000, 200, 1000
	gen := workload.NewTPCH(cfg)
	region := 2 // ASIA
	joins := NewQ5JoinFleet(gen, region)
	aggs := NewNationRevenueFleet()
	s0 := engine.NewStage("q5join", 4, joins.Factory, 2, asgRouter(4))
	s1 := engine.NewStage("q5agg", 2, aggs.Factory, 2, asgRouter(2))
	e := engine.New(gen.Next, engine.Config{Window: 2, Budget: 20000, MaxPendingFactor: 2, MigrationFactor: 1}, s0, s1)
	defer e.Stop()
	e.Run(3)
	if joins.TotalJoined() == 0 {
		t.Fatal("Q5 join produced no results")
	}
	var rev float64
	for n := 0; n < len(workload.Regions)*workload.NationsPerRegion; n++ {
		r := aggs.TotalRevenue(n)
		if r > 0 && workload.RegionOfNation(n) != region {
			t.Fatalf("revenue booked for nation %d outside region %d", n, region)
		}
		rev += r
	}
	if rev <= 0 {
		t.Fatal("no revenue aggregated")
	}
}

func TestQ5JoinRegionFilter(t *testing.T) {
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 500, 100, 200
	gen := workload.NewTPCH(cfg)
	joins := NewQ5JoinFleet(gen, 0)
	st := engine.NewStage("q5", 1, joins.Factory, 2, asgRouter(1))
	defer st.Stop()
	for i := 0; i < 5000; i++ {
		st.Feed(gen.Next())
	}
	st.Barrier()
	for _, o := range st.DrainEmitted() {
		nation := int(o.Key)
		if workload.RegionOfNation(nation) != 0 {
			t.Fatalf("join emitted nation %d outside region 0", nation)
		}
	}
}

func TestQ5RebalanceKeepsResultsFlowing(t *testing.T) {
	// Run the Q5 join stage under the Mixed controller; joins must keep
	// accumulating after rebalances (states moved correctly).
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 2000, 200, 500
	gen := workload.NewTPCH(cfg)
	joins := NewQ5JoinFleet(gen, 2)
	s0 := engine.NewStage("q5join", 4, joins.Factory, 2, asgRouter(4))
	e := engine.New(gen.Next, engine.Config{Window: 2, Budget: 10000, MaxPendingFactor: 2, MigrationFactor: 1}, s0)
	defer e.Stop()
	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	e.OnSnapshot = ctl.Hook()
	e.AdvanceWorkload = func(int64) { gen.Advance() }
	e.Run(6)
	if ctl.Rebalances() == 0 {
		t.Fatal("skewed FKs never triggered a rebalance")
	}
	before := joins.TotalJoined()
	e.Run(2)
	if joins.TotalJoined() <= before {
		t.Fatal("join results stopped after rebalance")
	}
}
