package ops

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Every operator of the fleet must take the batch-native path.
var (
	_ engine.BatchOperator = (*WordCount)(nil)
	_ engine.BatchOperator = (*SelfJoin)(nil)
	_ engine.BatchOperator = (*Q5Join)(nil)
	_ engine.BatchOperator = (*NationRevenue)(nil)
	_ engine.BatchOperator = (*PartialCount)(nil)
	_ engine.BatchOperator = (*MergeCount)(nil)
)

func newCtx(w int) *engine.TaskCtx {
	return &engine.TaskCtx{Store: state.NewStore(w), Tracker: stats.NewTracker(w)}
}

// TestProcessBatchMatchesPerTuple drives each stateful operator twice
// over the same tuple sequence — per tuple and in uneven batches — and
// requires identical observable results. The self-join is the
// order-sensitive case: probe-then-insert within a batch must still
// pair same-key tuples of that batch.
func TestProcessBatchMatchesPerTuple(t *testing.T) {
	mkTuples := func() []tuple.Tuple {
		gen := workload.NewStock(50, 0.9, 3)
		ts := make([]tuple.Tuple, 3000)
		gen.NextBatch(ts)
		return ts
	}
	batches := func(ts []tuple.Tuple) [][]tuple.Tuple {
		var out [][]tuple.Tuple
		for lo, n := 0, 1; lo < len(ts); n = n*2 + 1 {
			hi := lo + n
			if hi > len(ts) {
				hi = len(ts)
			}
			out = append(out, ts[lo:hi])
			lo = hi
		}
		return out
	}

	t.Run("selfjoin", func(t *testing.T) {
		ts := mkTuples()
		single, batched := NewSelfJoin(true), NewSelfJoin(true)
		cs, cb := newCtx(2), newCtx(2)
		for _, tp := range ts {
			single.Process(cs, tp)
		}
		for _, b := range batches(ts) {
			batched.ProcessBatch(cb, b)
		}
		if single.Matches != batched.Matches {
			t.Fatalf("matches %d per-tuple ≠ %d batched", single.Matches, batched.Matches)
		}
		if single.Matches == 0 {
			t.Fatal("test tape produced no joins; not exercising the probe path")
		}
		if a, b := cs.Store.TotalSize(), cb.Store.TotalSize(); a != b {
			t.Fatalf("window state %d ≠ %d", a, b)
		}
	})

	t.Run("wordcount", func(t *testing.T) {
		ts := mkTuples()
		single, batched := NewWordCount(), NewWordCount()
		cs, cb := newCtx(1), newCtx(1)
		for _, tp := range ts {
			single.Process(cs, tp)
		}
		for _, b := range batches(ts) {
			batched.ProcessBatch(cb, b)
		}
		for _, tp := range ts {
			if a, b := single.Count(tp.Key), batched.Count(tp.Key); a != b {
				t.Fatalf("key %d count %d ≠ %d", tp.Key, a, b)
			}
		}
	})

	t.Run("q5join", func(t *testing.T) {
		gen := workload.NewTPCH(workload.DefaultTPCHConfig())
		ts := make([]tuple.Tuple, 3000)
		gen.NextBatch(ts)
		single, batched := NewQ5Join(gen, 2), NewQ5Join(gen, 2)
		cs, cb := newCtx(2), newCtx(2)
		for _, tp := range ts {
			single.Process(cs, tp)
		}
		for _, b := range batches(ts) {
			batched.ProcessBatch(cb, b)
		}
		if single.Joined != batched.Joined {
			t.Fatalf("joined %d per-tuple ≠ %d batched", single.Joined, batched.Joined)
		}
		if single.Joined == 0 {
			t.Fatal("no q5 joins; not exercising the join path")
		}
	})

	t.Run("partialcount", func(t *testing.T) {
		ts := mkTuples()
		single, batched := NewPartialCount(), NewPartialCount()
		cs, cb := newCtx(1), newCtx(1)
		for _, tp := range ts {
			single.Process(cs, tp)
		}
		for _, b := range batches(ts) {
			batched.ProcessBatch(cb, b)
		}
		single.FlushInterval(cs)
		batched.FlushInterval(cb)
		if single.Published != batched.Published {
			t.Fatalf("published %d per-tuple ≠ %d batched", single.Published, batched.Published)
		}
	})
}
