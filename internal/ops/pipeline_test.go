package ops

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/pkgpart"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Pinned equivalence tests of the streaming inter-stage pipeline on the
// paper's real multi-stage topologies: with engine Cfg.Pipeline the
// interval metric series, the harvest snapshots of every stage and the
// controller's routing table must reproduce the store-and-forward run
// bit-identically. (Downstream float aggregates are not compared — they
// are arrival-order-dependent sums — but every exhibit-relevant
// quantity is.)

// assertSeriesEqual compares two interval series field by field,
// zeroing PlanMs (measured wall-clock plan-generation time, real
// nondeterminism rather than a data-plane quantity).
func assertSeriesEqual(t *testing.T, sf, pl []metrics.Interval) {
	t.Helper()
	if len(sf) != len(pl) {
		t.Fatalf("series lengths differ: %d ≠ %d", len(sf), len(pl))
	}
	for i := range sf {
		a, b := sf[i], pl[i]
		a.PlanMs, b.PlanMs = 0, 0
		if a != b {
			t.Fatalf("interval %d diverges:\nstore-and-forward %+v\npipelined         %+v", i, a, b)
		}
	}
}

// assertSnapshotsEqual compares the final per-stage harvest snapshots.
func assertSnapshotsEqual(t *testing.T, sf, pl []*stats.Snapshot) {
	t.Helper()
	for si := range sf {
		a, b := sf[si], pl[si]
		if len(a.Keys) != len(b.Keys) {
			t.Fatalf("stage %d snapshot sizes %d ≠ %d", si, len(b.Keys), len(a.Keys))
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] {
				t.Fatalf("stage %d snapshot entry %d: %+v ≠ %+v", si, i, b.Keys[i], a.Keys[i])
			}
		}
	}
}

// assertTablesEqual compares the routing tables two runs' controllers
// built: same rebalance decisions interval by interval.
func assertTablesEqual(t *testing.T, sf, pl *engine.Stage) {
	t.Helper()
	ta := sf.AssignmentRouter().Assignment().Table()
	tb := pl.AssignmentRouter().Assignment().Table()
	if ta.Len() != tb.Len() {
		t.Fatalf("routing tables differ in size: %d ≠ %d", ta.Len(), tb.Len())
	}
	for _, k := range ta.Keys() {
		da, _ := ta.Lookup(k)
		db, ok := tb.Lookup(k)
		if !ok || da != db {
			t.Fatalf("routing entry for key %d: store-and-forward → %d, pipelined → %d (present=%v)", k, da, db, ok)
		}
	}
}

// runQ5 drives the 2-stage Q5 topology (skewed windowed join under the
// Mixed controller → per-nation revenue aggregation) for n intervals
// with the given transfer mode and returns the engine (stopped), the
// join stage and the join fleet.
func runQ5(pipelined bool, n int) (*engine.Engine, *engine.Stage, *Q5JoinFleet) {
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 2000, 200, 800
	gen := workload.NewTPCH(cfg)
	joins := NewQ5JoinFleet(gen, 2)
	aggs := NewNationRevenueFleet()
	s0 := engine.NewStage("q5join", 4, joins.Factory, 2, asgRouter(4))
	s1 := engine.NewStage("q5agg", 2, aggs.Factory, 2, asgRouter(2))
	ecfg := engine.Config{Window: 2, Budget: 12000, MaxPendingFactor: 2, MigrationFactor: 1, Pipeline: pipelined}
	e := engine.New(gen.Next, ecfg, s0, s1)
	ctl := controller.New(balance.Mixed{}, balance.Config{ThetaMax: 0.08, TableMax: 3000, Beta: 1.5})
	ctl.MinKeys = 32
	e.OnSnapshot = ctl.Hook()
	e.AdvanceWorkload = func(i int64) {
		if i%3 == 0 {
			gen.Advance()
		}
	}
	e.Run(n)
	e.Stop()
	return e, s0, joins
}

// TestQ5PipelinedMatchesStoreAndForward pins the tentpole equivalence
// on the 2-stage TPC-H Q5 topology, rebalancing and FK drift included.
func TestQ5PipelinedMatchesStoreAndForward(t *testing.T) {
	const intervals = 8
	sf, sfJoin, sfFleet := runQ5(false, intervals)
	pl, plJoin, plFleet := runQ5(true, intervals)

	assertSeriesEqual(t, sf.Recorder.Series, pl.Recorder.Series)
	assertSnapshotsEqual(t, sf.LastSnapshots(), pl.LastSnapshots())
	assertTablesEqual(t, sfJoin, plJoin)
	if a, b := sfFleet.TotalJoined(), plFleet.TotalJoined(); a != b {
		t.Fatalf("join results diverge: store-and-forward %d, pipelined %d", a, b)
	}
	if sfFleet.TotalJoined() == 0 {
		t.Fatal("Q5 join produced no results; equivalence is vacuous")
	}
}

// runPKG drives the 2-stage split-key counting topology (PKG-routed
// partial counts flushing per interval → keyed merge) for n intervals
// and returns the engine, both stages and the merge fleet.
func runPKG(pipelined bool, n int) (*engine.Engine, *MergeCountFleet) {
	parts := NewPartialCountFleet()
	merges := NewMergeCountFleet()
	s0 := engine.NewStage("partial", 3, parts.Factory, 1,
		engine.PKGRouter{R: pkgpart.NewRouter(3)})
	s1 := engine.NewStage("merge", 2, merges.Factory, 1, asgRouter(2))
	var seq uint64
	e := engine.New(func() tuple.Tuple {
		seq++
		return tuple.New(tuple.Key(seq%11), nil)
	}, engine.Config{Window: 1, Budget: 1100, MaxPendingFactor: 2, MigrationFactor: 1, Pipeline: pipelined}, s0, s1)
	e.Run(n)
	e.Stop()
	return e, merges
}

// TestPKGPipelinedMatchesStoreAndForward pins the tentpole equivalence
// on the PartialCount→MergeCount topology: the interval-flush emission
// path (IntervalFlusher hooks run inside the cascading close) must
// deliver exactly the partials the store-and-forward drain did, and the
// merged totals — integer sums, order-independent — must agree exactly.
func TestPKGPipelinedMatchesStoreAndForward(t *testing.T) {
	const intervals = 5
	sf, sfMerges := runPKG(false, intervals)
	pl, plMerges := runPKG(true, intervals)

	assertSeriesEqual(t, sf.Recorder.Series, pl.Recorder.Series)
	assertSnapshotsEqual(t, sf.LastSnapshots(), pl.LastSnapshots())
	for k := tuple.Key(0); k < 11; k++ {
		a, b := sfMerges.TotalCount(k), plMerges.TotalCount(k)
		if a != b {
			t.Fatalf("merged count(%d) diverges: store-and-forward %d, pipelined %d", k, a, b)
		}
		if a != int64(intervals)*100 {
			t.Fatalf("merged count(%d) = %d, want %d", k, a, int64(intervals)*100)
		}
	}
}
