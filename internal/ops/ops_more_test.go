package ops

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/pkgpart"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Second round of operator coverage.

func TestPartialCountPublishesOncePerKeyPerInterval(t *testing.T) {
	parts := NewPartialCountFleet()
	st := engine.NewStage("partial", 1, parts.Factory, 1,
		engine.PKGRouter{R: pkgpart.NewRouter(1)})
	defer st.Stop()
	for i := 0; i < 100; i++ {
		st.Feed(tuple.New(tuple.Key(i%4), nil))
	}
	st.Barrier()
	st.FlushOps()
	out := st.DrainEmitted()
	if len(out) != 4 {
		t.Fatalf("flush emitted %d partials, want 4 (one per key)", len(out))
	}
	var total int64
	for _, o := range out {
		v, ok := o.Value.(int64)
		if !ok {
			t.Fatalf("partial value has type %T", o.Value)
		}
		total += v
	}
	if total != 100 {
		t.Fatalf("partials sum to %d, want 100", total)
	}
	if parts.Instances[0].Published != 4 {
		t.Fatalf("Published = %d", parts.Instances[0].Published)
	}
	// Second flush with no new tuples publishes nothing.
	st.FlushOps()
	if extra := st.DrainEmitted(); len(extra) != 0 {
		t.Fatalf("idle flush emitted %d partials", len(extra))
	}
}

func TestMergeCountIgnoresForeignValues(t *testing.T) {
	m := NewMergeCount()
	ctx := &engine.TaskCtx{}
	m.Process(ctx, tuple.New(1, "not-a-count"))
	m.FlushInterval(ctx)
	if got := m.M.Result(1); got != 0 {
		t.Fatalf("foreign value merged as %d", got)
	}
}

func TestNationRevenueIgnoresForeignValues(t *testing.T) {
	n := NewNationRevenue()
	n.Process(&engine.TaskCtx{}, tuple.New(1, "oops"))
	if n.Revenue[1] != 0 {
		t.Fatal("non-float value accumulated")
	}
}

func TestWordCountFleetTotalsAcrossInstances(t *testing.T) {
	f := NewWordCountFleet()
	a := f.Factory(0).(*WordCount)
	b := f.Factory(1).(*WordCount)
	ctx := &engine.TaskCtx{Store: state.NewStore(1)}
	// Fleet totals must survive a key being counted on two instances
	// over its lifetime (pre- and post-migration owners).
	stub := tuple.New(5, "w")
	a.Process(ctx, stub)
	b.Process(ctx, stub)
	if f.TotalCount(5) != 2 {
		t.Fatalf("TotalCount = %d", f.TotalCount(5))
	}
}

func TestSelfJoinStateSizeTracksTrades(t *testing.T) {
	fleet := NewSelfJoinFleet(false)
	st := engine.NewStage("join", 1, fleet.Factory, 2, asgRouter(1))
	defer st.Stop()
	for i := 0; i < 7; i++ {
		st.Feed(tuple.New(3, i).WithState(2))
	}
	st.Barrier()
	if got := st.StoreOf(0).Size(3); got != 14 {
		t.Fatalf("join window size = %d, want 14", got)
	}
}

func TestQ5JoinBuffersBothStreams(t *testing.T) {
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 100, 20, 50
	gen := workload.NewTPCH(cfg)
	j := NewQ5Join(gen, 0)
	st := engine.NewStage("q5", 1, func(int) engine.Operator { return j }, 2, asgRouter(1))
	defer st.Stop()

	o := tuple.New(1, workload.Order{OrderKey: 1, CustKey: 1})
	o.Stream = "O"
	li := tuple.New(1, workload.Lineitem{OrderKey: 1, SuppKey: 1, ExtendedPrice: 100})
	li.Stream = "L"
	st.Feed(o)
	st.Feed(li)
	st.Barrier()
	// Both rows buffered under orderkey 1.
	if got := st.StoreOf(0).Size(1); got == 0 {
		t.Fatal("join buffered nothing")
	}
	// Whether the pair joined depends on the region filter; emitting a
	// second matching lineitem must probe the buffered order either way.
	li2 := tuple.New(1, workload.Lineitem{OrderKey: 1, SuppKey: 2, ExtendedPrice: 50})
	li2.Stream = "L"
	st.Feed(li2)
	st.Barrier()
	entries := st.StoreOf(0).Entries(1)
	if len(entries) != 3 {
		t.Fatalf("window holds %d rows, want 3", len(entries))
	}
}
