package ops

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// NationRevenue accumulates in integer micro-units precisely so that
// the arrival order of the join stage's revenue contributions — which
// pipelined transfer and multi-feeder emission both scramble — cannot
// change the totals. These tests pin that contract.

// TestNationRevenueOrderInsensitive feeds the same revenue multiset in
// two opposite orders straight into one instance: the totals must be
// bit-identical, which float accumulation does not guarantee.
func TestNationRevenueOrderInsensitive(t *testing.T) {
	vals := make([]float64, 0, 2000)
	x := 1.0
	for i := 0; i < 2000; i++ {
		x = x*1.0061 + 0.17 // spread magnitudes over several orders
		if x > 1e6 {
			x /= 3e5
		}
		vals = append(vals, x)
	}
	feed := func(order func(i int) int) int64 {
		n := NewNationRevenue()
		for i := range vals {
			n.Process(nil, tuple.New(3, vals[order(i)]))
		}
		return n.Revenue[3]
	}
	fwd := feed(func(i int) int { return i })
	rev := feed(func(i int) int { return len(vals) - 1 - i })
	if fwd != rev {
		t.Fatalf("accumulation is order-dependent: forward %d, reverse %d µ-units", fwd, rev)
	}
	if fwd == 0 {
		t.Fatal("nothing accumulated; the pin is vacuous")
	}
}

// runQ5Feeders drives the 2-stage Q5 topology with the given transfer
// mode and spout parallelism and returns the aggregation fleet's
// per-nation totals in µ-units.
func runQ5Feeders(pipelined bool, feeders int) map[int]int64 {
	cfg := workload.DefaultTPCHConfig()
	cfg.Customers, cfg.Suppliers, cfg.OrderPool = 2000, 200, 800
	gen := workload.NewTPCH(cfg)
	joins := NewQ5JoinFleet(gen, 2)
	aggs := NewNationRevenueFleet()
	s0 := engine.NewStage("q5join", 4, joins.Factory, 2, asgRouter(4))
	s1 := engine.NewStage("q5agg", 2, aggs.Factory, 2, asgRouter(2))
	ecfg := engine.Config{Window: 2, Budget: 12000, MaxPendingFactor: 2, MigrationFactor: 1,
		Pipeline: pipelined, Feeders: feeders}
	e := engine.New(gen.Next, ecfg, s0, s1)
	e.Run(4)
	e.Stop()
	out := make(map[int]int64)
	for n := 0; n < len(workload.Regions)*workload.NationsPerRegion; n++ {
		var s int64
		for _, op := range aggs.Instances {
			s += op.Revenue[tuple.Key(n)]
		}
		out[n] = s
	}
	return out
}

// TestNationRevenuePipelinedFeedersMatchStoreAndForward pins the
// end-to-end guarantee: a pipelined multi-feeder Q5 run reproduces the
// serial store-and-forward totals exactly, µ-unit for µ-unit, even
// though the aggregation instances see the contributions in a
// completely different order.
func TestNationRevenuePipelinedFeedersMatchStoreAndForward(t *testing.T) {
	ref := runQ5Feeders(false, 1)
	var nonzero int
	for _, v := range ref {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("store-and-forward run produced no revenue; the pin is vacuous")
	}
	for _, mode := range []struct {
		name      string
		pipelined bool
		feeders   int
	}{
		{"pipelined", true, 1},
		{"pipelined+3feeders", true, 3},
	} {
		got := runQ5Feeders(mode.pipelined, mode.feeders)
		for n, want := range ref {
			if got[n] != want {
				t.Fatalf("%s: nation %d revenue %d µ-units, store-and-forward %d", mode.name, n, got[n], want)
			}
		}
	}
}
