package ops

import (
	"math"

	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// This file implements the continuous TPC-H Q5 pipeline of §V: a
// windowed equi-join of the orders and lineitem fact streams on
// orderkey (the skewed, stateful operator the rebalancer manages),
// followed by dimension lookups (customer→nation, supplier→nation),
// the region filter, and a revenue aggregation grouped by nation.

// Q5Join is the stage-0 operator: buffer both streams per orderkey in
// the sliding window; every order×lineitem pair within the window with
// matching orderkey joins. Joined rows that survive the region filter
// are emitted keyed by nation for downstream aggregation.
type Q5Join struct {
	gen *workload.TPCH
	// Region is the r_name filter (index into workload.Regions).
	Region int
	// Joined counts emitted join results, for verification.
	Joined int64
}

// NewQ5Join builds one instance's operator over the generator's
// dimension tables (read-only, safe to share across instances).
func NewQ5Join(gen *workload.TPCH, region int) *Q5Join {
	return &Q5Join{gen: gen, Region: region}
}

// Process implements engine.Operator.
func (q *Q5Join) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	switch v := t.Value.(type) {
	case workload.Order:
		// Probe buffered lineitems of this orderkey.
		for _, e := range ctx.Store.Entries(t.Key) {
			if li, ok := e.Value.(workload.Lineitem); ok {
				q.join(ctx, v, li)
			}
		}
	case workload.Lineitem:
		for _, e := range ctx.Store.Entries(t.Key) {
			if o, ok := e.Value.(workload.Order); ok {
				q.join(ctx, o, v)
			}
		}
	}
	ctx.Store.Add(t.Key, state.Entry{Value: t.Value, Size: t.StateSize})
}

// ProcessBatch implements engine.BatchOperator: the windowed-join loop
// over a whole channel message, preserving per-tuple probe-then-insert
// order so intra-batch order/lineitem pairs still join.
func (q *Q5Join) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	for i := range ts {
		q.Process(ctx, ts[i])
	}
}

// join applies the c ⋈ n and s ⋈ n lookups and the region filter, then
// emits the revenue contribution keyed by nation.
func (q *Q5Join) join(ctx *engine.TaskCtx, o workload.Order, li workload.Lineitem) {
	// Q5 requires customer and supplier in the same nation.
	cn := q.gen.NationOfCust(o.CustKey)
	sn := q.gen.NationOfSupp(li.SuppKey)
	if cn != sn || workload.RegionOfNation(sn) != q.Region {
		return
	}
	rev := li.ExtendedPrice * (1 - li.Discount)
	out := tuple.New(tuple.Key(sn), rev)
	out.Stream = "q5"
	ctx.Emit(out)
	q.Joined++
}

// Q5JoinFleet tracks instances.
type Q5JoinFleet struct {
	Instances map[int]*Q5Join
	Gen       *workload.TPCH
	Region    int
}

// NewQ5JoinFleet returns a fleet bound to one generator and region.
func NewQ5JoinFleet(gen *workload.TPCH, region int) *Q5JoinFleet {
	return &Q5JoinFleet{Instances: make(map[int]*Q5Join), Gen: gen, Region: region}
}

// Factory is the stage's operator factory.
func (f *Q5JoinFleet) Factory(id int) engine.Operator {
	op := NewQ5Join(f.Gen, f.Region)
	f.Instances[id] = op
	return op
}

// TotalJoined sums join results across instances.
func (f *Q5JoinFleet) TotalJoined() int64 {
	var s int64
	for _, op := range f.Instances {
		s += op.Joined
	}
	return s
}

// RevenueUnit is the fixed-point resolution NationRevenue accumulates
// at: one micro-currency-unit. Integer accumulation is exact and
// therefore order-insensitive — float addition is not associative, and
// under pipelined transfer (or Feeders > 1) the join tasks' revenue
// contributions reach an aggregation instance in nondeterministic
// order. Each contribution rounds to the grid once, at arrival, so the
// only tolerance against an infinitely precise sum is ±0.5 µ-units per
// joined row; totals are bit-identical across transfer modes, feeder
// counts and migration histories (pinned by test).
const RevenueUnit = 1e-6

// NationRevenue is the stage-1 operator: GROUP BY n_name SUM(revenue),
// 25 keys, effectively unskewed.
type NationRevenue struct {
	// Revenue holds each nation's accumulated revenue in integer
	// multiples of RevenueUnit.
	Revenue map[tuple.Key]int64
}

// NewNationRevenue builds one instance's operator.
func NewNationRevenue() *NationRevenue {
	return &NationRevenue{Revenue: make(map[tuple.Key]int64)}
}

// revenueUnits converts one emitted revenue contribution to the
// fixed-point grid.
func revenueUnits(rev float64) int64 {
	return int64(math.Round(rev / RevenueUnit))
}

// Process implements engine.Operator.
func (n *NationRevenue) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	if rev, ok := t.Value.(float64); ok {
		n.Revenue[t.Key] += revenueUnits(rev)
	}
}

// ProcessBatch implements engine.BatchOperator: one map-lookup loop
// per channel message for the 25-key aggregation.
func (n *NationRevenue) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	rev := n.Revenue
	for i := range ts {
		if r, ok := ts[i].Value.(float64); ok {
			rev[ts[i].Key] += revenueUnits(r)
		}
	}
}

// NationRevenueFleet tracks instances.
type NationRevenueFleet struct {
	Instances map[int]*NationRevenue
}

// NewNationRevenueFleet returns an empty fleet.
func NewNationRevenueFleet() *NationRevenueFleet {
	return &NationRevenueFleet{Instances: make(map[int]*NationRevenue)}
}

// Factory is the stage's operator factory.
func (f *NationRevenueFleet) Factory(id int) engine.Operator {
	op := NewNationRevenue()
	f.Instances[id] = op
	return op
}

// TotalRevenue sums revenue for a nation across instances. The
// per-instance accumulators are integers, so the float conversion
// happens once on the exact total.
func (f *NationRevenueFleet) TotalRevenue(nation int) float64 {
	var s int64
	for _, op := range f.Instances {
		s += op.Revenue[tuple.Key(nation)]
	}
	return float64(s) * RevenueUnit
}
