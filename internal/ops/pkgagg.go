package ops

import (
	"repro/internal/engine"
	"repro/internal/pkgpart"
	"repro/internal/tuple"
)

// This file implements the split-key aggregation pair PKG requires
// (Fig. 2(a) of the paper): an upstream partial-count operator whose
// keys may be split across two instances, and a downstream merge
// operator that recombines partials per key. The merge traffic and
// merge work are the overhead the paper charges PKG for in Fig. 14.

// PartialCount accumulates per-key counts locally and publishes
// (key, partial) tuples downstream at every interval flush — the
// period-p partial-result emission of the PKG implementation.
type PartialCount struct {
	partial map[tuple.Key]int64
	// Published counts total partial tuples emitted, a proxy for the
	// coordination traffic.
	Published int64
}

// NewPartialCount builds one instance's operator.
func NewPartialCount() *PartialCount {
	return &PartialCount{partial: make(map[tuple.Key]int64)}
}

// Process implements engine.Operator.
func (p *PartialCount) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	p.partial[t.Key]++
}

// ProcessBatch implements engine.BatchOperator: the partial-count
// upsert in a tight loop per channel message.
func (p *PartialCount) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	partial := p.partial
	for i := range ts {
		partial[ts[i].Key]++
	}
}

// SplitAbsorb implements engine.SplitFolder: the partial count is an
// occurrence sum, so the replica delta is the tuple count.
func (p *PartialCount) SplitAbsorb(t tuple.Tuple) int64 { return 1 }

// SplitMerge folds replica occurrences back into the home partial.
// The fold runs before FlushInterval, so the emitted partials (and
// Published) match an unsplit run exactly.
func (p *PartialCount) SplitMerge(ctx *engine.TaskCtx, k tuple.Key, delta, freq, mem int64) {
	if delta == 0 {
		return
	}
	p.partial[k] += delta
}

// FlushInterval implements engine.IntervalFlusher: emit one partial per
// touched key, then reset.
func (p *PartialCount) FlushInterval(ctx *engine.TaskCtx) {
	for k, v := range p.partial {
		out := tuple.New(k, v)
		out.Stream = "partial"
		ctx.Emit(out)
		p.Published++
		delete(p.partial, k)
	}
}

// PartialCountFleet tracks instances.
type PartialCountFleet struct {
	Instances map[int]*PartialCount
}

// NewPartialCountFleet returns an empty fleet.
func NewPartialCountFleet() *PartialCountFleet {
	return &PartialCountFleet{Instances: make(map[int]*PartialCount)}
}

// Factory is the stage's operator factory.
func (f *PartialCountFleet) Factory(id int) engine.Operator {
	op := NewPartialCount()
	f.Instances[id] = op
	return op
}

// MergeCount is the downstream merge operator: it folds partial counts
// into the authoritative per-key totals via pkgpart.Merger.
type MergeCount struct {
	M *pkgpart.Merger
}

// NewMergeCount builds one instance's operator.
func NewMergeCount() *MergeCount { return &MergeCount{M: pkgpart.NewMerger()} }

// Process implements engine.Operator.
func (m *MergeCount) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	v, _ := t.Value.(int64)
	m.M.Add(t.Key, v)
}

// ProcessBatch implements engine.BatchOperator: fold a whole message
// of partials with the merger resolved once.
func (m *MergeCount) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	mg := m.M
	for i := range ts {
		v, _ := ts[i].Value.(int64)
		mg.Add(ts[i].Key, v)
	}
}

// SplitAbsorb implements engine.SplitFolder: partial tuples carry an
// int64 count, and the merge is a per-key sum — the delta is the sum
// of absorbed partial values.
func (m *MergeCount) SplitAbsorb(t tuple.Tuple) int64 {
	v, _ := t.Value.(int64)
	return v
}

// SplitMerge folds the summed replica partials into the home merger.
func (m *MergeCount) SplitMerge(ctx *engine.TaskCtx, k tuple.Key, delta, freq, mem int64) {
	if freq == 0 {
		return
	}
	m.M.Add(k, delta)
}

// FlushInterval implements engine.IntervalFlusher (period-p merge).
func (m *MergeCount) FlushInterval(ctx *engine.TaskCtx) {
	m.M.Flush()
}

// MergeCountFleet tracks instances.
type MergeCountFleet struct {
	Instances map[int]*MergeCount
}

// NewMergeCountFleet returns an empty fleet.
func NewMergeCountFleet() *MergeCountFleet {
	return &MergeCountFleet{Instances: make(map[int]*MergeCount)}
}

// Factory is the stage's operator factory.
func (f *MergeCountFleet) Factory(id int) engine.Operator {
	op := NewMergeCount()
	f.Instances[id] = op
	return op
}

// TotalCount sums a key's merged count across merge instances.
func (f *MergeCountFleet) TotalCount(k tuple.Key) int64 {
	var s int64
	for _, op := range f.Instances {
		s += op.M.Result(k)
	}
	return s
}
