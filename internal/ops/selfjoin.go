package ops

import (
	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/tuple"
)

// SelfJoin is the Stock-data topology: a windowed self-join on stock ID
// that pairs each incoming trade with the recent trades of the same
// symbol ("find potential high-frequency players with dense buying and
// selling behavior"). The per-key window state is exactly what must
// migrate when a key moves — the costliest stateful operator in the
// evaluation.
type SelfJoin struct {
	// Matches counts join pairs produced, for verification.
	Matches int64
	// EmitPairs controls whether joined pairs are emitted downstream
	// (left off in single-stage benchmarks to avoid flooding).
	EmitPairs bool
}

// NewSelfJoin builds one instance's operator.
func NewSelfJoin(emit bool) *SelfJoin { return &SelfJoin{EmitPairs: emit} }

// Process implements engine.Operator: probe the key's window, count
// (and optionally emit) matches, then insert the tuple.
func (j *SelfJoin) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	probes := ctx.Store.Entries(t.Key)
	j.Matches += int64(len(probes))
	if j.EmitPairs {
		for range probes {
			out := tuple.New(t.Key, t.Value)
			out.Stream = "J"
			ctx.Emit(out)
		}
	}
	ctx.Store.Add(t.Key, state.Entry{Value: t.Value, Size: t.StateSize})
}

// ProcessBatch implements engine.BatchOperator: per-tuple Process in
// a tight loop, keeping the join logic in one place. Probe-then-insert
// order per tuple is preserved, so the match count for a batch equals
// the per-tuple path exactly (tuples of the same key within one batch
// still pair with each other).
func (j *SelfJoin) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	for i := range ts {
		j.Process(ctx, ts[i])
	}
}

// SelfJoinFleet tracks instances per task id.
type SelfJoinFleet struct {
	Instances map[int]*SelfJoin
	EmitPairs bool
}

// NewSelfJoinFleet returns an empty fleet.
func NewSelfJoinFleet(emit bool) *SelfJoinFleet {
	return &SelfJoinFleet{Instances: make(map[int]*SelfJoin), EmitPairs: emit}
}

// Factory is the stage's operator factory.
func (f *SelfJoinFleet) Factory(id int) engine.Operator {
	op := NewSelfJoin(f.EmitPairs)
	f.Instances[id] = op
	return op
}

// TotalMatches sums matches across instances.
func (f *SelfJoinFleet) TotalMatches() int64 {
	var s int64
	for _, op := range f.Instances {
		s += op.Matches
	}
	return s
}
