// Package ops provides the paper's application operators: word count
// over social feeds, windowed self-join over stock trades, the
// split-key aggregation pair PKG needs (partial count + merge), and the
// TPC-H Q5 continuous-join pipeline (§V).
package ops

import (
	"repro/internal/engine"
	"repro/internal/state"
	"repro/internal/tuple"
)

// WordCount is the Social-data topology: it maintains the appearance
// frequency of each topic word over the sliding window. State grows
// with word frequency, so hot words are expensive to migrate — the
// regime where MinMig/Mixed's γ index matters.
type WordCount struct {
	// counts holds the running total per key for result verification.
	counts map[tuple.Key]int64
}

// NewWordCount builds one instance's operator.
func NewWordCount() *WordCount {
	return &WordCount{counts: make(map[tuple.Key]int64)}
}

// Process implements engine.Operator.
func (w *WordCount) Process(ctx *engine.TaskCtx, t tuple.Tuple) {
	w.counts[t.Key]++
	ctx.Store.Add(t.Key, state.Entry{Value: int64(1), Size: t.StateSize})
}

// ProcessBatch implements engine.BatchOperator: the count and store
// updates run in one tight loop per channel message, with the map and
// store lookups hoisted out of the interface dispatch.
func (w *WordCount) ProcessBatch(ctx *engine.TaskCtx, ts []tuple.Tuple) {
	counts, store := w.counts, ctx.Store
	for i := range ts {
		counts[ts[i].Key]++
		store.Add(ts[i].Key, state.Entry{Value: int64(1), Size: ts[i].StateSize})
	}
}

// SplitAbsorb implements engine.SplitFolder: one tuple contributes one
// occurrence, so the commutative replica delta is the tuple count.
func (w *WordCount) SplitAbsorb(t tuple.Tuple) int64 { return 1 }

// SplitMerge folds the replicas' summed occurrences back into the home
// instance's count and windowed state — delta occurrences carrying mem
// bytes of state land exactly as freq Process calls would have.
func (w *WordCount) SplitMerge(ctx *engine.TaskCtx, k tuple.Key, delta, freq, mem int64) {
	if freq == 0 {
		return
	}
	w.counts[k] += delta
	ctx.Store.Add(k, state.Entry{Value: delta, Size: mem})
}

// Count returns the instance-local total for a key.
func (w *WordCount) Count(k tuple.Key) int64 { return w.counts[k] }

// WordCountFleet tracks the operator instance created per task so
// tests and examples can inspect results after the run. Instances share
// nothing; key grouping sends a key to exactly one live instance at a
// time and migration moves windowed state along.
type WordCountFleet struct {
	Instances map[int]*WordCount
}

// NewWordCountFleet returns an empty fleet.
func NewWordCountFleet() *WordCountFleet {
	return &WordCountFleet{Instances: make(map[int]*WordCount)}
}

// Factory is the stage's operator factory.
func (f *WordCountFleet) Factory(id int) engine.Operator {
	op := NewWordCount()
	f.Instances[id] = op
	return op
}

// TotalCount sums a key's count across instances (exactly one instance
// holds a given key at a time under key grouping, but counts persist on
// prior owners after migration; the sum is the true total).
func (f *WordCountFleet) TotalCount(k tuple.Key) int64 {
	var s int64
	for _, op := range f.Instances {
		s += op.Count(k)
	}
	return s
}
