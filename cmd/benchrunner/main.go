// Command benchrunner regenerates the paper's tables and figures as
// text series.
//
// Usage:
//
//	benchrunner                # run everything, print each exhibit
//	benchrunner -exp fig08     # one exhibit
//	benchrunner -exp fig07a,fig12
//	benchrunner -list          # list exhibit ids
//
// Output rows correspond to the x-axis points of the paper's plots;
// columns to its series. EXPERIMENTS.md interprets each against the
// published shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated exhibit ids, or 'all'")
		list   = flag.Bool("list", false, "list exhibit ids and exit")
		csvDir = flag.String("csv", "", "also write each exhibit as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}

	reg := experiments.Registry()
	if *list {
		for _, e := range reg {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	all := *exp == "all" || *exp == ""
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}

	ran := 0
	for _, e := range reg {
		if !all && !want[e.ID] {
			continue
		}
		start := time.Now()
		res := e.Run()
		fmt.Println(res.Render())
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no exhibit matched %q; use -list\n", *exp)
		os.Exit(1)
	}
}
