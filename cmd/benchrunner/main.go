// Command benchrunner regenerates the paper's tables and figures as
// text series.
//
// Usage:
//
//	benchrunner                # run everything, print each exhibit
//	benchrunner -exp fig08     # one exhibit
//	benchrunner -exp fig07a,fig12
//	benchrunner -list          # list exhibit ids
//	benchrunner -dataplane BENCH_dataplane.json
//	                           # measure the tuple hot path and write
//	                           # tuples/sec as JSON (skips exhibits)
//	benchrunner -dataplane BENCH_dataplane.json -feeders 4
//	                           # same, with 4-way spout fan-out on the
//	                           # engine measurements (scaling curve)
//	benchrunner -dataplane BENCH_dataplane.json -multistage
//	                           # additionally benchmark a 2-stage
//	                           # topology end to end, pipelined vs
//	                           # store-and-forward (-msbudget scales it)
//	benchrunner -dataplane BENCH_dataplane.json -keys 4096,16384,65536
//	                           # additionally sweep tracked-key
//	                           # populations through the interval-close
//	                           # + control-round path, full vs
//	                           # incremental harvest at a 1k working set
//	benchrunner -pipeline      # run the exhibits with streaming
//	                           # inter-stage transfer (A/B against the
//	                           # default store-and-forward run)
//
// The per-interval control-loop overhead micro-bench lives with its
// subject (internal/control BenchmarkControlRound /
// BenchmarkEngineInterval); `make bench-control` drives it.
//
// Output rows correspond to the x-axis points of the paper's plots;
// columns to its series; README.md documents how each exhibit maps to
// the published figures. The -dataplane report is the trajectory file
// future perf PRs compare against: when the target file already exists
// its numbers are printed alongside the fresh ones as old-vs-new.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hashring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated exhibit ids, or 'all'")
		list       = flag.Bool("list", false, "list exhibit ids and exit")
		csvDir     = flag.String("csv", "", "also write each exhibit as CSV into this directory")
		dataplane  = flag.String("dataplane", "", "measure data-plane tuples/sec and write the JSON report to this path (skips exhibits)")
		feeders    = flag.Int("feeders", 1, "spout parallelism for the -dataplane engine measurements (the scaling-curve knob)")
		multistage = flag.Bool("multistage", false, "with -dataplane: also benchmark a 2-stage topology end to end, store-and-forward vs pipelined transfer")
		msBudget   = flag.Int64("msbudget", 20000, "per-interval spout budget for the -multistage and -cluster benchmarks (CI smoke uses a tiny value)")
		clusterB   = flag.Bool("cluster", false, "with -dataplane: also benchmark the distributed runtime — the multistage 2-stage shape hosted on two worker processes' stages over real sockets, one point per transport (tcp, unix)")
		thetas     = flag.String("theta", "", "with -dataplane: comma-separated Zipf skews for the hot-key sweep; each θ is measured split-off and split-on (e.g. 0.99,1.2,1.5)")
		keysF      = flag.String("keys", "", "with -dataplane: comma-separated tracked-key populations for the harvest sweep; each is measured through interval close + one control round over the wire, full vs incremental harvest, with a 1k working set (e.g. 4096,16384,65536)")
		pipeline   = flag.Bool("pipeline", false, "run the exhibits with streaming inter-stage transfer (outputs match the default store-and-forward run on key-partitioned stages; fig01's shuffle stages may interleave on multicore)")
	)
	flag.Parse()
	if *feeders < 1 {
		fmt.Fprintf(os.Stderr, "benchrunner: -feeders must be ≥ 1 (got %d)\n", *feeders)
		os.Exit(2)
	}
	if *msBudget < 1 {
		fmt.Fprintf(os.Stderr, "benchrunner: -msbudget must be ≥ 1 (got %d)\n", *msBudget)
		os.Exit(2)
	}
	var sweep []float64
	if *thetas != "" {
		for _, f := range strings.Split(*thetas, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad -theta value %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, v)
		}
	}
	var keySweep []int
	if *keysF != "" {
		for _, f := range strings.Split(*keysF, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad -keys value %q\n", f)
				os.Exit(2)
			}
			keySweep = append(keySweep, v)
		}
	}
	experiments.SetPipeline(*pipeline)
	if *dataplane != "" {
		if err := writeDataplaneReport(*dataplane, *feeders, *multistage, *clusterB, *msBudget, sweep, keySweep); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}

	reg := experiments.Registry()
	if *list {
		for _, e := range reg {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	all := *exp == "all" || *exp == ""
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}

	ran := 0
	for _, e := range reg {
		if !all && !want[e.ID] {
			continue
		}
		start := time.Now()
		res := e.Run()
		fmt.Println(res.Render())
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no exhibit matched %q; use -list\n", *exp)
		os.Exit(1)
	}
}

// dataplaneReport is the schema of BENCH_dataplane.json: tuples/sec
// per hot-path measurement, so successive PRs can track the trajectory
// of the batched data plane. Feeders records the spout parallelism the
// engine measurements ran with, so scaling-curve points taken at
// different -feeders values are distinguishable; GoMaxProcs and NumCPU
// record where the numbers were taken — fan-out and pipeline-overlap
// measurements from a single-core host understate the parallel paths
// (the ROADMAP's "multicore scaling numbers" item).
type dataplaneReport struct {
	Schema       string             `json:"schema"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	NumCPU       int                `json:"num_cpu,omitempty"`
	Feeders      int                `json:"feeders"`
	TuplesPerSec map[string]float64 `json:"tuples_per_sec"`
	// FeedLatencyUs records the engine_interval run's wall-clock
	// FeedBatch-call latency quantiles in µs (engine.Config.FeedLatency
	// histograms, worst interval), the steady-state companion to the
	// rebalance-latency comparison in `make bench-control`. Always
	// present (p50/p99 keys, zero when the run recorded no samples).
	FeedLatencyUs map[string]float64 `json:"feed_latency_us"`
	// Sweep holds the hot-key θ sweep (-theta): each Zipf skew measured
	// with hot-key splitting off and on, so the report records where
	// per-key replication starts to pay on this host.
	Sweep []sweepPoint `json:"hotkey_sweep,omitempty"`
	// Cluster holds the distributed-runtime sweep (-cluster): per
	// transport, the gob oracle plus the binary wire at each coalescing
	// budget (off / 4KB / 32KB), with wire-efficiency columns next to
	// the throughput. cluster_interval_{tcp,unix} in TuplesPerSec mirror
	// the binary/32KB points (the default configuration), keeping the
	// scalar trajectory keys comparable across schema versions.
	Cluster []clusterPoint `json:"cluster_sweep,omitempty"`
	// HarvestSweep holds the tracked-key population sweep (-keys): each
	// population measured through interval close plus one wire control
	// round with a 1k working set, full harvest vs incremental — the
	// O(keys)-vs-O(Δkeys) control-cost comparison.
	HarvestSweep []harvestPoint `json:"harvest_sweep,omitempty"`
}

// clusterPoint is one distributed-runtime measurement: the 2-stage
// forwarding topology on two workers over one transport, with the wire
// codec and coalescing budget pinned. BytesPerTuple is total codec
// payload sent across every connection (both directions of the control
// plane included) divided by spout tuples emitted — each spout tuple
// crosses two data hops, so this is the whole-cluster wire cost of one
// tuple, not one hop's. AllocsPerMsg divides the timed run's heap
// allocations (whole process: engines, spout and codecs together) by
// the wire messages sent; coalesced frames count as one message, which
// is exactly why the column moves with the budget.
type clusterPoint struct {
	Network       string  `json:"network"`
	Wire          string  `json:"wire"`     // "gob" | "binary"
	Coalesce      string  `json:"coalesce"` // "off" | "4KB" | "32KB"
	TuplesPerSec  float64 `json:"tuples_per_sec"`
	BytesPerTuple float64 `json:"bytes_per_tuple"`
	AllocsPerMsg  float64 `json:"allocs_per_msg"`
}

// harvestPoint is one (population, harvest mode) measurement: mean
// per-interval close time, mean hold-round time (close + report +
// decide + resume over the gob wire), and mean LoadReport bytes per
// round received on the controller side. Mode is "full" (every round
// re-sends the whole population) or "delta" (rounds ride changed +
// retired sets).
type harvestPoint struct {
	Keys            int     `json:"keys"`
	Mode            string  `json:"mode"`
	IntervalCloseUs float64 `json:"interval_close_us"`
	HoldRoundUs     float64 `json:"hold_round_us"`
	LoadReportBytes float64 `json:"loadreport_bytes"`
}

// holdPolicy never commands; harvest-sweep rounds measure pure
// report-path cost.
type holdPolicy struct{}

func (holdPolicy) Decide(control.Env, *stats.Snapshot) []control.Command { return nil }

// measureHarvest drives one (population, mode) point: a 4-instance
// stage tracks nkeys keys, then each measured round touches a 1k
// working set, closes the interval, and runs one held control round
// over the wire transport. With HarvestFull the close rebuilds the
// whole aggregate and the reports re-carry every key; with
// HarvestIncremental the close merges only the touched keys and the
// reports carry the delta. The operator is Discard, as in
// BenchmarkControlRound: the sweep isolates the harvest + report path,
// not operator state maintenance (which costs the same in both modes).
func measureHarvest(nkeys int, mode engine.HarvestMode) harvestPoint {
	const (
		nd      = 4
		working = 1024
		rounds  = 20
	)
	pt := harvestPoint{Keys: nkeys, Mode: "full"}
	if mode == engine.HarvestIncremental {
		pt.Mode = "delta"
	}
	st := engine.NewStage("harvest", nd, func(int) engine.Operator { return engine.Discard }, 1,
		engine.NewAssignmentRouter(topology.NewAssignment(nd)))
	cfg := engine.DefaultConfig()
	cfg.Harvest = mode
	e := engine.New(func() tuple.Tuple { return tuple.New(0, nil) }, cfg, st)
	defer e.Stop()
	loop := control.NewLoop(e, 0, []control.Policy{holdPolicy{}}, control.Wire())
	defer loop.Close()
	hook := loop.Hook()

	// Seed the full population, then run two warm-up rounds: the first
	// hook round always sends full reports (the mirror starts empty),
	// the second settles the delta path so measured rounds are
	// steady-state.
	buf := make([]tuple.Tuple, working)
	interval := int64(0)
	round := func(lo int) {
		for i := range buf {
			buf[i] = tuple.New(tuple.Key(lo+i), 1)
		}
		st.FeedBatch(buf)
		st.Barrier()
		interval++
		t0 := time.Now()
		snap := st.EndInterval(interval)
		closed := time.Since(t0)
		hook(e, 0, snap)
		hold := time.Since(t0)
		pt.IntervalCloseUs += float64(closed.Microseconds())
		pt.HoldRoundUs += float64(hold.Microseconds())
	}
	for lo := 0; lo < nkeys; lo += working {
		n := working
		if lo+n > nkeys {
			n = nkeys - lo
		}
		buf = buf[:n]
		for i := range buf {
			buf[i] = tuple.New(tuple.Key(lo+i), 1)
		}
		st.FeedBatch(buf)
		st.Barrier()
	}
	buf = buf[:working]
	interval++
	hook(e, 0, st.EndInterval(interval))
	round(0)
	pt.IntervalCloseUs, pt.HoldRoundUs = 0, 0
	_, rcvd0 := loop.WireBytes()
	for r := 0; r < rounds; r++ {
		round((r * working) % nkeys)
	}
	_, rcvd1 := loop.WireBytes()
	pt.IntervalCloseUs /= rounds
	pt.HoldRoundUs /= rounds
	pt.LoadReportBytes = float64(rcvd1-rcvd0) / rounds
	return pt
}

// sweepPoint is one (θ, split on/off) measurement of the hot-key
// sweep: end-to-end engine throughput plus the worst-interval feed
// latency quantiles, and the high-water mark of concurrently split
// keys (always 0 when Split is false).
type sweepPoint struct {
	Theta        float64 `json:"theta"`
	Split        bool    `json:"split"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	FeedP50Us    float64 `json:"feed_p50_us"`
	FeedP99Us    float64 `json:"feed_p99_us"`
	SplitKeysMax int     `json:"split_keys_max"`
}

// readDataplaneReport loads a previously written report, for the
// old-vs-new comparison. A missing file is not an error (no baseline
// yet); a malformed one is.
func readDataplaneReport(path string) (*dataplaneReport, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var r dataplaneReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &r, nil
}

// writeDataplaneReport benchmarks the tuple hot path end to end and
// writes the tuples/sec report. Measurements mirror the in-package
// micro-benchmarks (BenchmarkFeedBatch, BenchmarkRingLookupLUT,
// BenchmarkTrackerObserveBatch) plus whole-engine interval rates on
// the serial and fanned-out emission paths; with multistage set, a
// 2-stage topology is additionally driven end to end under both
// transfer modes (multistage_interval_sf = store-and-forward,
// multistage_interval = streaming pipeline); with clusterB set, the
// same 2-stage shape is driven through the distributed runtime — the
// stages hosted by two in-process workers, every hop a real socket —
// once per transport (cluster_interval_tcp, cluster_interval_unix).
// When the target file
// already holds a report, the old numbers are printed next to the new
// ones so perf PRs can quote the trajectory directly.
func writeDataplaneReport(path string, feeders int, multistage, clusterB bool, msBudget int64, sweep []float64, keySweep []int) error {
	// The Feed/FeedBatch micro-measurements drive one stage directly
	// (no spout, no intervals); the builder still declares it, and
	// stopping the stage stops every goroutine the topology owns.
	mk := func(nd int) *engine.Stage {
		return topology.New().
			Stage("bench", func(int) engine.Operator { return engine.Discard },
				topology.Instances(nd)).
			Build().Stage(0)
	}
	keys := make([]tuple.Tuple, 4096)
	for i := range keys {
		keys[i] = tuple.New(tuple.Key(uint64(i)*2654435761%4096), nil)
	}
	perTuple := func(r testing.BenchmarkResult) float64 {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		return 1e9 / ns
	}
	baseline, err := readDataplaneReport(path)
	if err != nil {
		return err
	}
	report := dataplaneReport{
		Schema:        "dataplane-v7",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Feeders:       feeders,
		TuplesPerSec:  map[string]float64{},
		FeedLatencyUs: map[string]float64{"p50": 0, "p99": 0},
	}

	feed := testing.Benchmark(func(b *testing.B) {
		st := mk(10)
		defer st.Stop()
		for i := 0; i < b.N; i++ {
			st.Feed(keys[i%len(keys)])
		}
		b.StopTimer()
		st.Barrier()
	})
	report.TuplesPerSec["feed_per_tuple"] = perTuple(feed)

	const batch = 1024
	fb := testing.Benchmark(func(b *testing.B) {
		st := mk(10)
		defer st.Stop()
		for n := 0; n < b.N; n += batch {
			off := n % len(keys)
			if off+batch > len(keys) {
				off = 0
			}
			st.FeedBatch(keys[off : off+batch])
		}
		b.StopTimer()
		st.Barrier()
	})
	report.TuplesPerSec["feed_batch"] = perTuple(fb)

	// The same measurement through the pausing-migration oracle: the
	// builder default is the pause-free generation-stamped feed path,
	// so feed_batch vs feed_batch_pausing is the no-migration hot-path
	// price of each mode.
	fbo := testing.Benchmark(func(b *testing.B) {
		st := topology.New(topology.PausingMigration()).
			Stage("bench", func(int) engine.Operator { return engine.Discard },
				topology.Instances(10)).
			Build().Stage(0)
		defer st.Stop()
		for n := 0; n < b.N; n += batch {
			off := n % len(keys)
			if off+batch > len(keys) {
				off = 0
			}
			st.FeedBatch(keys[off : off+batch])
		}
		b.StopTimer()
		st.Barrier()
	})
	report.TuplesPerSec["feed_batch_pausing"] = perTuple(fbo)

	// The fanned-out feed: `feeders` goroutines each drive FeedBatch
	// with a private buffer, the emission shape of Cfg.Feeders = N.
	// Recorded only when actually fanned out, so the key always means
	// the same measurement across reports.
	if feeders > 1 {
		fbp := testing.Benchmark(func(b *testing.B) {
			st := mk(10)
			defer st.Stop()
			per := b.N / feeders
			var wg sync.WaitGroup
			for f := 0; f < feeders; f++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Feed straight from the shared tuple slice, as the
					// serial benchmark does: FeedBatch copies out of its
					// argument and concurrent readers are safe, so both
					// measurements cover exactly the same work.
					for n := 0; n < per; n += batch {
						off := n % len(keys)
						if off+batch > len(keys) {
							off = 0
						}
						st.FeedBatch(keys[off : off+batch])
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			st.Barrier()
		})
		report.TuplesPerSec["feed_batch_feeders"] = perTuple(fbp)
	}

	ring := hashring.New(10, 0)
	rl := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ring.Hash(tuple.Key(i))
		}
	})
	report.TuplesPerSec["ring_lookup"] = perTuple(rl)

	tr := stats.NewTracker(1)
	ob := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n += batch {
			off := n % len(keys)
			if off+batch > len(keys) {
				off = 0
			}
			tr.ObserveBatch(keys[off : off+batch])
		}
	})
	report.TuplesPerSec["tracker_observe_batch"] = perTuple(ob)

	engineRate := func(nFeeders int) (rate, p50, p99 float64) {
		var emittedTotal int64
		ei := testing.Benchmark(func(b *testing.B) {
			gen := workload.NewZipfStream(10000, 0.85, 0, 10000, 17)
			sys := core.NewSystemBatch(core.Config{Instances: 10, Algorithm: core.AlgMixed, Budget: 10000, MinKeys: 64, Feeders: nFeeders},
				gen.NextBatch, func(int) engine.Operator { return engine.StatefulCount })
			defer sys.Stop()
			// Time the feed calls too: the per-interval histograms cost
			// one clock read per FeedBatch and surface the p50/p99 the
			// rebalance-latency bench compares against.
			sys.Engine.Cfg.FeedLatency = true
			b.ResetTimer()
			sys.Run(b.N)
			b.StopTimer()
			// Count what was actually emitted: backpressure can throttle
			// intervals below Budget, and the trajectory metric must not
			// report tuples that never flowed. Quantiles reset per
			// benchmark invocation — only the final (longest) run's worst
			// interval is reported.
			emittedTotal, p50, p99 = 0, 0, 0
			for _, m := range sys.Recorder().Series {
				emittedTotal += m.Emitted
				if m.FeedP99Us > p99 {
					p50, p99 = m.FeedP50Us, m.FeedP99Us
				}
			}
		})
		return float64(emittedTotal) / ei.T.Seconds(), p50, p99
	}
	rate, p50, p99 := engineRate(1)
	report.TuplesPerSec["engine_interval"] = rate
	report.FeedLatencyUs["p50"], report.FeedLatencyUs["p99"] = p50, p99
	if feeders > 1 {
		rate, _, _ = engineRate(feeders)
		report.TuplesPerSec["engine_interval_feeders"] = rate
	}

	// The hot-key θ sweep: one single-stage topology per (θ, split)
	// point under extreme Zipf skew, identical seeds, so the split-on
	// vs split-off delta isolates the per-key replication machinery.
	// The detector splits at most 4 keys once one key's interval cost
	// reaches the per-task capacity.
	for _, theta := range sweep {
		for _, split := range []bool{false, true} {
			pt := sweepPoint{Theta: theta, Split: split}
			var emittedTotal int64
			r := testing.Benchmark(func(b *testing.B) {
				gen := workload.NewZipfStream(10000, theta, 0, 10000, 17)
				sOpts := []topology.StageOption{
					topology.Instances(10),
					topology.WithAlgorithm(topology.AlgMixed),
					topology.MinKeys(64),
				}
				if split {
					sOpts = append(sOpts, topology.HotKeySplit(4, 1.0))
				}
				sys := topology.New(
					topology.SpoutBatch(gen.NextBatch),
					topology.Budget(10000),
				).Stage("hot", func(int) engine.Operator { return engine.StatefulCount }, sOpts...).Build()
				defer sys.Stop()
				sys.Engine.Cfg.FeedLatency = true
				b.ResetTimer()
				sys.Run(b.N)
				b.StopTimer()
				emittedTotal, pt.FeedP50Us, pt.FeedP99Us = 0, 0, 0
				for _, m := range sys.Recorder().Series {
					emittedTotal += m.Emitted
					if m.FeedP99Us > pt.FeedP99Us {
						pt.FeedP50Us, pt.FeedP99Us = m.FeedP50Us, m.FeedP99Us
					}
				}
				if sp := sys.Splitter(0); sp != nil {
					pt.SplitKeysMax = sp.MaxActive
				}
			})
			pt.TuplesPerSec = float64(emittedTotal) / r.T.Seconds()
			report.Sweep = append(report.Sweep, pt)
		}
	}

	// The harvest sweep: each tracked-key population measured through
	// the interval-close + control-round path under full and incremental
	// harvest, identical 1k working sets. The full/delta ratio at large
	// populations is the O(keys) → O(Δkeys) control-cost claim.
	for _, nkeys := range keySweep {
		for _, mode := range []engine.HarvestMode{engine.HarvestFull, engine.HarvestIncremental} {
			report.HarvestSweep = append(report.HarvestSweep, measureHarvest(nkeys, mode))
		}
	}

	// The 2-stage topology end to end: a keyed forwarding map feeding a
	// keyed sink, the minimal shape where inter-stage transfer cost is
	// on the critical path. Spout tuples/sec is reported (each spout
	// tuple crosses both stages), with the store-and-forward driver and
	// the streaming pipeline measured over identical seeds so the delta
	// isolates the transfer machinery.
	if multistage {
		msRate := func(pipelined bool) float64 {
			const nd = 8
			fwd := engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
				ctx.Emit(tuple.New(t.Key, nil))
			})
			var emittedTotal int64
			r := testing.Benchmark(func(b *testing.B) {
				gen := workload.NewZipfStream(10000, 0.85, 0, msBudget, 17)
				mode := topology.StoreAndForward()
				if pipelined {
					mode = topology.Pipelined()
				}
				sys := topology.New(
					topology.SpoutBatch(gen.NextBatch),
					topology.Budget(msBudget),
					topology.MaxPending(0), // saturate: measure transfer, not the throttle
					mode,
				).Stage("ms-map", func(int) engine.Operator { return fwd },
					topology.Instances(nd),
				).Stage("ms-sink", func(int) engine.Operator { return engine.Discard },
					topology.Instances(nd),
				).Build()
				defer sys.Stop()
				b.ResetTimer()
				sys.Run(b.N)
				b.StopTimer()
				emittedTotal = 0
				for _, m := range sys.Recorder().Series {
					emittedTotal += m.Emitted
				}
			})
			return float64(emittedTotal) / r.T.Seconds()
		}
		report.TuplesPerSec["multistage_interval_sf"] = msRate(false)
		report.TuplesPerSec["multistage_interval"] = msRate(true)
	}

	// The distributed runtime on the same 2-stage shape: both stages
	// hosted by cluster workers (in-process here, but every hop — spout
	// feed, inter-stage transfer, control drive — crosses a real
	// socket). Spout tuples/sec again, so the points read directly
	// against multistage_interval: the delta is serialization plus the
	// kernel's socket path. Each transport is swept across the wire
	// configurations — the gob oracle (always one frame per chunk),
	// then the binary codec with coalescing off, at a 4KB budget, and
	// at the 32KB default — so the report separates what the codec buys
	// from what batching the syscalls buys. The binary/32KB point also
	// lands in TuplesPerSec under the v6 scalar keys, keeping the
	// old-vs-new trajectory readable across the schema change.
	if clusterB {
		registerBenchOps()
		wireCfgs := []struct {
			wire     string
			coalesce int
			label    string
		}{
			{"gob", -1, "off"},
			{"binary", -1, "off"},
			{"binary", 4 << 10, "4KB"},
			{"binary", 32 << 10, "32KB"},
		}
		for _, network := range []string{"tcp", "unix"} {
			for _, cf := range wireCfgs {
				pt, err := clusterRate(network, msBudget, cf.wire == "gob", cf.coalesce)
				if err != nil {
					return fmt.Errorf("cluster bench (%s, wire=%s, coalesce=%s): %w",
						network, cf.wire, cf.label, err)
				}
				pt.Network, pt.Wire, pt.Coalesce = network, cf.wire, cf.label
				report.Cluster = append(report.Cluster, pt)
				if cf.wire == "binary" && cf.label == "32KB" {
					report.TuplesPerSec["cluster_interval_"+network] = pt.TuplesPerSec
				}
			}
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("data-plane report written to %s (feeders=%d, gomaxprocs=%d, numcpu=%d)\n",
		path, feeders, report.GoMaxProcs, report.NumCPU)
	// The fan-out and pipeline-overlap measurements only show their
	// speedups with real parallelism: scaling-curve and multistage
	// numbers recorded on a single-core host are not a usable baseline
	// (ROADMAP "multicore scaling numbers").
	if (feeders > 1 || multistage) && (report.NumCPU == 1 || report.GoMaxProcs == 1) {
		fmt.Fprintf(os.Stderr, "warning: recording feeders/pipeline numbers on a single-core host "+
			"(gomaxprocs=%d, numcpu=%d); parallel paths cannot show their speedup here — "+
			"record the scaling curve on a multicore machine\n", report.GoMaxProcs, report.NumCPU)
	}
	// Deltas are a trajectory only when the configurations match: a
	// baseline taken at another feeder count or GOMAXPROCS measured
	// different work.
	comparable := baseline != nil && baseline.Feeders == report.Feeders &&
		baseline.GoMaxProcs == report.GoMaxProcs
	if baseline != nil && !comparable {
		fmt.Printf("  (baseline was feeders=%d gomaxprocs=%d — configs differ, no old-vs-new deltas)\n",
			baseline.Feeders, baseline.GoMaxProcs)
	}
	names := make([]string, 0, len(report.TuplesPerSec))
	for k := range report.TuplesPerSec {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := report.TuplesPerSec[k]
		if comparable {
			if old, ok := baseline.TuplesPerSec[k]; ok && old > 0 {
				fmt.Printf("  %-24s %14.0f tuples/sec  (was %14.0f, %+.1f%%)\n", k, v, old, 100*(v-old)/old)
				continue
			}
		}
		fmt.Printf("  %-24s %14.0f tuples/sec\n", k, v)
	}
	fmt.Printf("  %-24s p50 %.1f µs, p99 %.1f µs (worst interval, engine_interval run)\n",
		"feed_latency", report.FeedLatencyUs["p50"], report.FeedLatencyUs["p99"])
	for _, pt := range report.Sweep {
		mode := "off"
		if pt.Split {
			mode = "on "
		}
		line := fmt.Sprintf("  hotkey θ=%-5.2f split=%s %11.0f tuples/sec  feed p50 %.1f µs p99 %.1f µs",
			pt.Theta, mode, pt.TuplesPerSec, pt.FeedP50Us, pt.FeedP99Us)
		if pt.Split {
			line += fmt.Sprintf("  (max %d keys split)", pt.SplitKeysMax)
		}
		if comparable {
			for _, old := range baseline.Sweep {
				if old.Theta == pt.Theta && old.Split == pt.Split && old.TuplesPerSec > 0 {
					line += fmt.Sprintf("  (was %.0f, %+.1f%%)",
						old.TuplesPerSec, 100*(pt.TuplesPerSec-old.TuplesPerSec)/old.TuplesPerSec)
					break
				}
			}
		}
		fmt.Println(line)
	}
	for _, pt := range report.HarvestSweep {
		line := fmt.Sprintf("  harvest keys=%-6d %-5s close %8.1f µs  hold round %8.1f µs  report %8.0f B",
			pt.Keys, pt.Mode, pt.IntervalCloseUs, pt.HoldRoundUs, pt.LoadReportBytes)
		if pt.Mode == "delta" {
			for _, full := range report.HarvestSweep {
				if full.Keys == pt.Keys && full.Mode == "full" && pt.HoldRoundUs > 0 && pt.LoadReportBytes > 0 {
					line += fmt.Sprintf("  (vs full: %.1fx round, %.1fx bytes)",
						full.HoldRoundUs/pt.HoldRoundUs, full.LoadReportBytes/pt.LoadReportBytes)
					break
				}
			}
		}
		if comparable {
			for _, old := range baseline.HarvestSweep {
				if old.Keys == pt.Keys && old.Mode == pt.Mode && old.HoldRoundUs > 0 {
					line += fmt.Sprintf("  (was %.1f µs, %+.1f%%)",
						old.HoldRoundUs, 100*(pt.HoldRoundUs-old.HoldRoundUs)/old.HoldRoundUs)
					break
				}
			}
		}
		fmt.Println(line)
	}
	for _, pt := range report.Cluster {
		line := fmt.Sprintf("  cluster %-4s wire=%-6s coalesce=%-4s %11.0f tuples/sec  %5.1f B/tuple  %6.1f allocs/msg",
			pt.Network, pt.Wire, pt.Coalesce, pt.TuplesPerSec, pt.BytesPerTuple, pt.AllocsPerMsg)
		if comparable {
			for _, old := range baseline.Cluster {
				if old.Network == pt.Network && old.Wire == pt.Wire &&
					old.Coalesce == pt.Coalesce && old.TuplesPerSec > 0 {
					line += fmt.Sprintf("  (was %.0f, %+.1f%%)",
						old.TuplesPerSec, 100*(pt.TuplesPerSec-old.TuplesPerSec)/old.TuplesPerSec)
					break
				}
			}
		}
		fmt.Println(line)
	}
	return nil
}

// benchOpsOnce guards the cluster-bench operator registrations: the
// registry panics on duplicates, and clusterRate runs once per
// transport.
var benchOpsOnce sync.Once

// registerBenchOps registers the -cluster benchmark's operators — the
// same forwarding map and sink the -multistage benchmark builds
// directly, named so worker-hosted stages can resolve them.
func registerBenchOps() {
	benchOpsOnce.Do(func() {
		cluster.RegisterOp("bench/fwd", func(int) engine.Operator {
			return engine.OperatorFunc(func(ctx *engine.TaskCtx, t tuple.Tuple) {
				ctx.Emit(tuple.New(t.Key, nil))
			})
		})
		cluster.RegisterOp("bench/sink", func(int) engine.Operator { return engine.Discard })
	})
}

// clusterRate measures end-to-end spout tuples/sec of the 2-stage
// forwarding topology hosted on two cluster workers over one
// transport, with the wire codec (gobWire pins the oracle) and the
// frame-coalescing budget fixed for the run. The workers run
// in-process (goroutines, not exec) so the measurement isolates the
// wire cost — serialization plus the socket round trips of the
// interval drive — without process spawn noise; the bytes still cross
// real kernel sockets.
//
// Wire-efficiency columns come from the shutdown Stats: bytes and
// messages are whole-session totals (two warm-up intervals and the
// handshake included — a few percent against a timed run hundreds of
// intervals long), while the allocation count covers exactly the timed
// region, so allocs/msg slightly understates steady state rather than
// crediting warm-up.
func clusterRate(network string, msBudget int64, gobWire bool, coalesce int) (clusterPoint, error) {
	const nWorkers = 2
	cluster.SetWireGob(gobWire)
	defer cluster.SetWireGob(false)
	var pt clusterPoint
	var emittedTotal, sentBytes, sentMsgs int64
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		if benchErr != nil {
			return
		}
		b.ReportAllocs()
		gen := workload.NewZipfStream(10000, 0.85, 0, msBudget, 17)
		spec := &cluster.Spec{
			Name:     "bench-cluster",
			Budget:   msBudget,
			SpoutB:   gen.NextBatch,
			Coalesce: coalesce,
			Stages: []cluster.StageSpec{
				{Name: "ms-map", Op: "bench/fwd", Instances: 8},
				{Name: "ms-sink", Op: "bench/sink", Instances: 8},
			},
		}
		addr := "127.0.0.1:0"
		var dir string
		if network == "unix" {
			var err error
			if dir, err = os.MkdirTemp("", "repro-bench-cluster"); err != nil {
				benchErr = err
				return
			}
			defer os.RemoveAll(dir)
			addr = filepath.Join(dir, "coord.sock")
		}
		c, err := cluster.NewCoordinator(spec, network, addr)
		if err != nil {
			benchErr = err
			return
		}
		errs := make(chan error, nWorkers)
		for i := 0; i < nWorkers; i++ {
			dataAddr := "127.0.0.1:0"
			if network == "unix" {
				dataAddr = filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
			}
			w, err := cluster.NewWorker(network, c.Addr(), dataAddr, fmt.Sprintf("w%d", i))
			if err != nil {
				benchErr = err
				return
			}
			go func() { errs <- w.Run() }()
		}
		if err := c.Deploy(nWorkers); err != nil {
			benchErr = err
			return
		}
		// Two untimed warm-up intervals: the first interval pays one-off
		// costs (gob type dictionaries crossing every connection, TCP
		// window growth) that would dominate a b.N=1 probe.
		if err := c.Run(2); err != nil {
			benchErr = err
			return
		}
		b.ResetTimer()
		err = c.Run(b.N)
		b.StopTimer()
		if err != nil {
			benchErr = err
			return
		}
		emittedTotal = 0
		for _, m := range c.Recorder().Series {
			emittedTotal += m.Emitted
		}
		stats, err := c.Shutdown()
		if err != nil {
			benchErr = err
		}
		// Sum the sent side of every connection in the cluster: each
		// payload byte is sent exactly once, so this is the total wire
		// traffic without double-counting the receive mirrors.
		sentBytes, sentMsgs = 0, 0
		for _, s := range stats {
			for _, cs := range s.Conns {
				sentBytes += cs.Sent
				sentMsgs += cs.SentMsgs
			}
		}
		for i := 0; i < nWorkers; i++ {
			if err := <-errs; err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	if benchErr != nil {
		return clusterPoint{}, benchErr
	}
	pt.TuplesPerSec = float64(emittedTotal) / r.T.Seconds()
	if emittedTotal > 0 {
		pt.BytesPerTuple = float64(sentBytes) / float64(emittedTotal)
	}
	if sentMsgs > 0 {
		pt.AllocsPerMsg = float64(r.MemAllocs) / float64(sentMsgs)
	}
	return pt, nil
}
