// Command coordinator drives a registered topology across a fleet of
// worker processes: it listens for registrations, places stages
// (stage si on worker si mod N), runs the interval clock and the
// control plane over real sockets, and prints the run summary plus
// per-connection byte counters at shutdown.
//
// Self-contained multi-process run (the coordinator execs its own
// workers):
//
//	go build -o /tmp/worker ./cmd/worker
//	go run ./cmd/coordinator -workers 3 -topology socialpipe -worker-bin /tmp/worker
//
// Or start workers by hand against a fixed listen address:
//
//	coordinator -listen 127.0.0.1:7400 -workers 2 &
//	worker -coordinator 127.0.0.1:7400 &
//	worker -coordinator 127.0.0.1:7400 &
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/topology"
)

func main() {
	var (
		workers   = flag.Int("workers", 3, "number of worker registrations to wait for")
		topo      = flag.String("topology", "socialpipe", "registered topology name")
		network   = flag.String("network", "tcp", "socket family: tcp or unix")
		listen    = flag.String("listen", "", "listen address (default: ephemeral)")
		intervals = flag.Int("intervals", 0, "intervals to run (default: topology default, honors REPRO_INTERVALS)")
		workerBin = flag.String("worker-bin", "", "worker binary to exec -workers subprocesses of (default: workers join externally)")
		wire      = flag.String("wire", "binary", "wire codec: binary (negotiated per connection, falls back to gob on old peers) or gob (pin the equivalence oracle; REPRO_WIRE=gob does the same)")
	)
	flag.Parse()
	switch *wire {
	case "binary":
	case "gob":
		cluster.SetWireGob(true)
	default:
		fmt.Fprintf(os.Stderr, "coordinator: unknown -wire %q (binary or gob)\n", *wire)
		os.Exit(2)
	}
	if err := run(*workers, *topo, *network, *listen, *intervals, *workerBin, *wire); err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
}

func run(workers int, topo, network, listen string, intervals int, workerBin, wire string) error {
	spec, err := cluster.LookupTopology(topo)
	if err != nil {
		return err
	}
	if listen == "" {
		switch network {
		case "tcp":
			listen = "127.0.0.1:0"
		case "unix":
			dir, err := os.MkdirTemp("", "repro-coord")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			listen = filepath.Join(dir, "coord.sock")
		default:
			return fmt.Errorf("unknown network %q", network)
		}
	}
	if intervals <= 0 {
		intervals = topology.Intervals(24)
	}

	c, err := cluster.NewCoordinator(spec, network, listen)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator: listening on %s!%s, waiting for %d workers\n", network, c.Addr(), workers)

	// With -worker-bin the coordinator owns the whole fleet: exec one
	// worker subprocess per slot, pointed at our own listener.
	var procs []*exec.Cmd
	for i := 0; workerBin != "" && i < workers; i++ {
		// The wire choice rides along so the whole fleet is pinned: the
		// handshake would force coordinator-facing edges to gob anyway,
		// but inter-worker data edges negotiate pairwise and would stay
		// binary if the workers were not told.
		cmd := exec.Command(workerBin,
			"-coordinator", c.Addr(),
			"-network", network,
			"-name", fmt.Sprintf("w%d", i),
			"-wire", wire)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("exec worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}

	if err := c.Deploy(workers); err != nil {
		return err
	}
	for si, w := range c.Placement() {
		fmt.Printf("  stage %d (%s) -> worker %d\n", si, spec.Stages[si].Name, w)
	}

	fmt.Printf("running %d intervals\n", intervals)
	if err := c.Run(intervals); err != nil {
		return err
	}

	rec := c.Recorder()
	fmt.Printf("\ntarget stage: mean throughput %.0f tuples/s, mean latency %.2f ms, rebalances %d\n",
		rec.MeanThroughput(), rec.MeanLatency(), c.Rebalances())
	for si := range spec.Stages {
		fmt.Printf("  stage %d (%s): processed %d tuples\n", si, spec.Stages[si].Name, c.Processed(si))
	}

	stats, err := c.Shutdown()
	fmt.Println()
	fmt.Print(cluster.FormatStats(stats))
	for _, p := range procs {
		if werr := p.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("worker exit: %w", werr)
		}
	}
	return err
}
