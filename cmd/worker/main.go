// Command worker hosts pipeline stages for a cluster coordinator: it
// registers, builds whatever stages it is assigned, serves the
// interval drive over its session socket, and exits on the
// coordinator's shutdown.
//
//	worker -coordinator 127.0.0.1:7400 [-network tcp] [-name w0] [-data 127.0.0.1:0] [-wire binary]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
)

func main() {
	var (
		coord   = flag.String("coordinator", "", "coordinator address to register with (required)")
		network = flag.String("network", "tcp", "socket family: tcp or unix")
		name    = flag.String("name", "", "worker name (defaults to worker-<pid>)")
		data    = flag.String("data", "", "data-plane listen address (default: ephemeral)")
		wire    = flag.String("wire", "binary", "wire codec: binary (negotiated, falls back to gob on old peers) or gob (pin the oracle; REPRO_WIRE=gob does the same)")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "worker: -coordinator is required")
		os.Exit(2)
	}
	switch *wire {
	case "binary":
	case "gob":
		cluster.SetWireGob(true)
	default:
		fmt.Fprintf(os.Stderr, "worker: unknown -wire %q (binary or gob)\n", *wire)
		os.Exit(2)
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	dataAddr := *data
	if dataAddr == "" {
		switch *network {
		case "tcp":
			dataAddr = "127.0.0.1:0"
		case "unix":
			dir, err := os.MkdirTemp("", "repro-worker")
			if err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
			dataAddr = filepath.Join(dir, "data.sock")
		default:
			fmt.Fprintf(os.Stderr, "worker: unknown network %q\n", *network)
			os.Exit(2)
		}
	}
	if err := cluster.RunWorker(*network, *coord, dataAddr, *name); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}
