// Command tracetool records synthetic workloads as CSV traces and
// replays traces through the partitioning system, printing the
// per-interval metric series. It turns the reproduction into a tool
// usable against real traces (the paper's Social/Stock feeds were
// exactly such recordings).
//
// Generate a trace:
//
//	tracetool -gen stock -n 200000 -out stock.csv
//	tracetool -gen zipf -k 10000 -z 0.85 -n 100000 -out zipf.csv
//
// Replay it:
//
//	tracetool -replay stock.csv -alg mixed -instances 10 -intervals 20
//	tracetool -replay stock.csv -alg storm -intervals 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	var (
		gen       = flag.String("gen", "", "generate a trace: zipf | social | stock | tpch")
		n         = flag.Int("n", 100000, "tuples to generate")
		k         = flag.Int("k", 10000, "key-domain size (zipf/social)")
		z         = flag.Float64("z", 0.85, "Zipf skew")
		f         = flag.Float64("f", 1.0, "fluctuation rate (zipf)")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output trace file (default stdout)")
		replay    = flag.String("replay", "", "replay a trace file")
		alg       = flag.String("alg", "mixed", "algorithm: mixed|mintable|minmig|mixedbf|compact|readj|storm|pkg|ideal")
		instances = flag.Int("instances", 10, "operator parallelism N_D")
		intervals = flag.Int("intervals", 20, "intervals to run")
		budget    = flag.Int("budget", 10000, "tuples per interval")
		theta     = flag.Float64("theta", 0.08, "imbalance tolerance θmax")
		window    = flag.Int("window", 1, "state window w")
	)
	flag.Parse()

	switch {
	case *gen != "":
		if err := generate(*gen, *n, *k, *z, *f, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracetool:", err)
			os.Exit(1)
		}
	case *replay != "":
		if err := replayTrace(*replay, *alg, *instances, *intervals, *budget, *theta, *window); err != nil {
			fmt.Fprintln(os.Stderr, "tracetool:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind string, n, k int, z, f float64, seed int64, out string) error {
	var next func() tuple.Tuple
	switch kind {
	case "zipf":
		g := workload.NewZipfStream(k, z, f, int64(n), seed)
		next = g.Next
	case "social":
		g := workload.NewSocial(k, z, 0.002, seed)
		next = g.Next
	case "stock":
		g := workload.NewStock(0, z, seed)
		next = g.Next
	case "tpch":
		cfg := workload.DefaultTPCHConfig()
		cfg.Seed = seed
		g := workload.NewTPCH(cfg)
		next = g.Next
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = next()
	}
	w := os.Stdout
	if out != "" {
		file, err := os.Create(out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if err := workload.WriteTrace(w, tuples); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("wrote %d tuples to %s\n", n, out)
	}
	return nil
}

func replayTrace(path, alg string, nd, intervals, budget int, theta float64, window int) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, err := workload.ReadTrace(file)
	file.Close()
	if err != nil {
		return err
	}
	tr.Loop = true
	fmt.Printf("replaying %s (%d tuples) under %s, N_D=%d, theta=%.2f\n\n",
		path, tr.Len(), alg, nd, theta)

	sys := core.NewSystem(core.Config{
		Instances: nd,
		Window:    window,
		ThetaMax:  theta,
		Algorithm: core.Algorithm(alg),
		Budget:    int64(budget),
		MinKeys:   32,
	}, tr.Spout(), func(int) engine.Operator { return engine.StatefulCount })
	defer sys.Stop()

	fmt.Println("interval  throughput  latency_ms  skewness  rebalanced  migration%  table")
	for i := 0; i < intervals; i++ {
		sys.Run(1)
		m := sys.Recorder().Series[i]
		fmt.Printf("%8d  %10.0f  %10.1f  %8.3f  %10v  %10.2f  %5d\n",
			m.Index, m.Throughput, m.LatencyMs, m.Skewness, m.Rebalanced, m.MigrationPct, m.TableSize)
	}
	fmt.Printf("\nmean throughput %.0f tuples/s, mean latency %.1f ms\n",
		sys.Recorder().MeanThroughput(), sys.Recorder().MeanLatency())
	if sys.Controller != nil {
		fmt.Printf("rebalances: %d\n", sys.Controller.Rebalances())
	}
	return nil
}
