package repro

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// One benchmark per table/figure of the paper's evaluation. Each
// iteration regenerates the full exhibit; the interesting numbers are
// surfaced through b.ReportMetric so `go test -bench` output doubles as
// a results summary. Exhibits print their series through the
// benchrunner (cmd/benchrunner); here we only time regeneration and
// export headline metrics.

// cell parses a numeric table cell ("-" and labels yield 0).
func cell(r *experiments.Result, row, col int) float64 {
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable2Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2()
	}
}

func BenchmarkFig07HashSkewness(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig07a()
	}
	// p100 skewness at N_D = 40 (paper: ≈2.5).
	b.ReportMetric(cell(res, 3, 5), "skew-p100-nd40")
}

func BenchmarkFig07KeyDomain(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig07b()
	}
	b.ReportMetric(cell(res, 0, 5), "skew-p100-k5000")
}

func BenchmarkFig08InstanceSweep(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig08()
	}
	// Migration ratio MinTable/Mixed at N_D = 40, w = 5.
	mx, mt := cell(res, 7, 5), cell(res, 7, 6)
	if mx > 0 {
		b.ReportMetric(mt/mx, "mintable/mixed-mig-ratio")
	}
}

func BenchmarkFig09ThetaSweep(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig09()
	}
	b.ReportMetric(cell(res, 0, 3), "mixed-mig%-theta.02")
}

func BenchmarkFig10KeySweep(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10()
	}
	b.ReportMetric(cell(res, 0, 3), "mixed-mig%-k5000")
}

func BenchmarkFig11Compact(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig11()
	}
	// Plan-time ratio original key space / compact R=8.
	orig, r8 := cell(res, 0, 1), cell(res, 4, 1)
	if r8 > 0 {
		b.ReportMetric(orig/r8, "orig/compact-plantime-ratio")
	}
	b.ReportMetric(cell(res, 4, 4), "estErr%-R8-theta.08")
}

func BenchmarkFig12FluctuationSweep(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig12()
	}
	// Plan-time ratios at f = 0.9 (row 4).
	mx := cell(res, 4, 1)
	if mx > 0 {
		b.ReportMetric(cell(res, 4, 3)/mx, "readj/mixed-plantime")
		b.ReportMetric(cell(res, 4, 4)/mx, "mixedbf/mixed-plantime")
	}
}

func BenchmarkFig13ThroughputLatency(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig13()
	}
	// Mixed / Storm throughput at f = 0.1.
	storm := cell(res, 0, 1)
	if storm > 0 {
		b.ReportMetric(cell(res, 0, 3)/storm, "mixed/storm-thr-f0.1")
	}
}

func BenchmarkFig14SocialThroughput(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig14a()
	}
	// Mixed / PKG at θ = 0.02 (paper: ≈1.1).
	pkg := cell(res, 0, 4)
	if pkg > 0 {
		b.ReportMetric(cell(res, 0, 3)/pkg, "mixed/pkg-thr")
	}
}

func BenchmarkFig14StockThroughput(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig14b()
	}
	storm := cell(res, 0, 1)
	if storm > 0 {
		b.ReportMetric(cell(res, 0, 3)/storm, "mixed/storm-thr")
	}
}

func BenchmarkFig15ScaleOut(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig15()
	}
	// Mixed θ=0.1 throughput right after the scale-out event (t=10).
	b.ReportMetric(cell(res, 5, 1), "mixed-thr-post-scaleout")
}

func BenchmarkFig16TPCH(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig16()
	}
	// Mean advantage of Mixed over Storm across sampled points.
	var mixed, storm float64
	for r := range res.Rows {
		mixed += cell(res, r, 1)
		storm += cell(res, r, 4)
	}
	if storm > 0 {
		b.ReportMetric(mixed/storm, "mixed/storm-thr-mean")
	}
}

func BenchmarkFig17TableBound(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig17()
	}
	b.ReportMetric(cell(res, 0, 1), "mig%-NA2-theta.02")
}

func BenchmarkFig18TableGrowth(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig18()
	}
	b.ReportMetric(cell(res, len(res.Rows)-1, 1), "table-1024adj-theta.02")
}

func BenchmarkFig19WindowSweep(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig19()
	}
	mx := cell(res, 4, 1)
	if mx > 0 {
		b.ReportMetric(cell(res, 4, 2)/mx, "mintable/mixed-mig-w9")
	}
}

func BenchmarkFig20BetaTable(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig20()
	}
	b1, b2 := cell(res, 0, 1), cell(res, len(res.Rows)-1, 1)
	if b2 > 0 {
		b.ReportMetric(b1/b2, "table-beta1/beta2-ratio")
	}
}

func BenchmarkFig21BetaMigration(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig21()
	}
	b.ReportMetric(cell(res, len(res.Rows)-1, 1), "mig%-beta2-theta.02")
}

func BenchmarkFig01Pipeline(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig01()
	}
	storm, mixed := cell(res, 0, 2), cell(res, 1, 2)
	if storm > 0 {
		b.ReportMetric(mixed/storm, "mixed/storm-pipeline-thr")
	}
}
