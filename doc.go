// Package repro reproduces "Parallel Stream Processing Against
// Workload Skewness and Variance" (Fang et al., HPDC 2017) as a
// self-contained Go library: the mixed hash/explicit-table routing
// scheme, the LLFD/MinTable/MinMig/Mixed rebalance planners, the
// compact 6-dimensional statistics representation with HLHE
// discretization, a goroutine-based stream-processing engine substrate
// with generation-stamped pause-free live migration (the Fig. 5
// pause/migrate/resume protocol remains the pinned oracle), the Readj
// and PKG baselines, and a benchmark harness regenerating every table
// and figure of the paper's evaluation.
//
// Entry points:
//
//   - internal/topology: the declarative builder for multi-stage
//     systems (per-stage routing, planners, capacity; pipelined
//     transfer by default) — see Example_topology
//   - internal/core: the single-stage embedding API (Config,
//     NewSystem, NewSystemBatch), a thin wrapper over the builder
//   - cmd/benchrunner: regenerate any exhibit (-exp fig13), or measure
//     the tuple hot path (-dataplane BENCH_dataplane.json)
//   - bench_test.go: the same exhibits as testing.B benchmarks
//   - examples/: runnable demonstration topologies, all declared
//     through the builder
//
// # Topology builder
//
// Multi-stage systems are declared, not hand-wired:
//
//	sys := topology.New(topology.Spout(gen.Next), topology.Budget(20000)).
//		Stage("join", joins.Factory, topology.Instances(10), topology.Window(5),
//			topology.WithAlgorithm(topology.AlgMixed), topology.MinKeys(64)).
//		Stage("agg", aggs.Factory, topology.Instances(4), topology.Window(5)).
//		Build()
//
// Per-stage options select instances, window, algorithm or raw router
// (assignment, PKG, shuffle), planner/controller and service capacity.
// Every stage may carry its own controller — the engine fans each
// stage's harvest snapshot out to per-stage hooks
// (engine.AddSnapshotHook), so a two-stage topology can rebalance both
// stages independently. Topologies with two or more stages run the
// streaming inter-stage pipeline by default;
// topology.StoreAndForward() keeps the legacy barrier transfer, which
// remains the equivalence-test oracle.
//
// # Unified elastic control plane
//
// Per-stage control runs through one command path (internal/control):
// controllers and autoscalers are control.Policy implementations that
// consume interval snapshots and emit typed commands — Rebalance,
// ScaleOut, ScaleIn — applied by a single per-stage Executor whose
// every step crosses the transport as a protocol message (LoadReport,
// PlanAnnounce, Resize, StateTransfer, Ack, Resume). The default
// transport is an in-process loopback; topology.WireControl() runs the
// identical rounds through the gob Codec over a pipe, pinned
// equivalent, so a multi-process deployment only swaps the connection.
// ScaleIn is a real actuator (engine.Stage.ScaleIn — drain the
// retiring task, shrink the hash ring, migrate its keys' windowed
// state and statistics to the survivors live), the mirror of ScaleOut;
// engine.ResizeStage(si, ±1) resizes any stage, not just the target.
// Attach extra policies per stage with topology.WithPolicy (the §VII
// composition: a Mixed rebalancer for short-term fluctuations plus
// longterm.AutoScaler answering sustained shifts elastically).
//
// # Parallel runtime
//
// Both ends of the interval loop are parallel. Emission fans out to
// Config.Feeders goroutines, each drawing a disjoint, deterministic
// share of the spout sequence (workload Shard / engine.ShardSpout)
// and feeding the stage concurrently — the emitted multiset is
// identical to a serial run, and so is every exhibit metric on
// key-partitioned stages (order-dependent routers like PKG and
// shuffle instead observe the feeders' interleaving).
// Statistics harvest (Stage.EndInterval) runs on all task goroutines
// concurrently, each producing a sorted run that the driver combines
// with a k-way merge (stats.MergeRuns) into the planner snapshot.
//
// # Streaming interval pipeline
//
// Multi-stage topologies run pipelined under engine.Config.Pipeline:
// each upstream task streams its emitted tuples into the downstream
// stage's FeedBatch in emitChunk-sized batches from its own goroutine,
// so stage s+1 consumes and processes while stage s is still working,
// and the interval ends with a cascading close (barrier stage s, flush
// residual emission buffers downstream, close stage s+1). Backpressure
// scans every stage's backlog, EmitTick is stamped at emission time,
// and the store-and-forward driver remains selectable — its
// equivalence (interval series, snapshots, routing tables, exhibit
// outputs) is pinned by tests.
//
// # Batched data plane
//
// The tuple hot path is batch-oriented end to end, so the per-tuple
// overheads the paper's experiments would otherwise drown in are
// amortized across hundreds of tuples:
//
//   - the engine draws tuples through a batch spout (engine.SpoutBatch,
//     workload NextBatch methods) into a reusable scratch buffer;
//   - engine.Stage.FeedBatch partitions a whole batch into
//     per-destination slices against a wait-free atomic load of the
//     generation-stamped routing assignment (no lock, no paused-key
//     check on the pause-free default; one lock acquisition on the
//     pausing oracle) and sends each task at most one channel message
//     per batch, carved from a refcount-recycled buffer;
//   - route.Assignment.DestBatch/DestTuples resolve destinations with
//     the empty-table test and interface dispatch hoisted out of the
//     per-tuple loop;
//   - hashring.Ring precomputes a dense power-of-two lookup table at
//     construction, making the consistent-hash lookup an O(1) masked
//     array index (bit-identical to the exact ring search);
//   - stats.Tracker accumulates per-key cells in an open-addressed
//     value-cell table with a batch entry point (ObserveBatch), so a
//     tuple costs one probe-and-update and a new key costs no
//     allocation.
//
// Batching changes cost, not semantics: routing decisions, interval
// boundaries and the migration protocol are exactly those of the
// per-tuple path (equivalence is pinned by tests; exhibit outputs are
// bit-identical).
//
// # Pause-free live migration
//
// Applying a rebalance plan no longer pauses the feed path. The
// routing assignment and hash-ring LUT are published behind a single
// atomic pointer with a generation counter; Feed/FeedBatch load it
// wait-free and stamp batches with the generation they routed under.
// A plan swaps the new generation in first, the destination buffers
// new-generation tuples for each moving key in a bounded handoff
// queue armed before the swap, and the source extracts windowed state
// and tracker history once its own old-generation watermark passes —
// per task, no stage-wide drain. topology.PausingMigration() (or
// engine.Config.PauseFree = false) selects the paper's literal Fig. 5
// sequence, pinned bit-equivalent by a randomized schedule test and
// raced by a continuous-plan stress test. engine.Config.FeedLatency
// records a per-feeder latency histogram (metrics.LatencyHist) merged
// into metrics.Interval.FeedP50Us/FeedP99Us.
//
// # Hot-key splitting
//
// Migration moves whole keys, so a single viral key still caps at one
// task's speed. topology.HotKeySplit(maxKeys, threshold) arms a
// per-stage contention detector (stats.HotKeyDetector: bounded top-k
// heap over the tracker, entry at threshold × per-task capacity,
// hysteresis exit) whose split set travels as a SplitAnnounce protocol
// message. A split key's tuples fan round-robin across a replica set;
// replicas absorb commutative deltas through the engine.SplitFolder
// contract (SplitAbsorb on the replica, SplitMerge at the home) and
// every cell folds back into the key's home task at interval close —
// before snapshots, metrics or downstream flushes — so all observables
// are pinned bit-identical to the unsplit run. Split keys are pinned
// against rebalance plans (controller guardSplit + stage backstop,
// both counting SplitPinned), transitions ride the pause-free
// machinery, and Build panics if combined with PausingMigration().
// examples/viralkey demonstrates a flash crowd; make bench-hotkey
// records the θ-sweep in BENCH_dataplane.json.
//
// See README.md for the architecture tour; per-exhibit interpretation
// against the published shapes lives with the runners in
// internal/experiments.
package repro
