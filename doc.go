// Package repro reproduces "Parallel Stream Processing Against
// Workload Skewness and Variance" (Fang et al., HPDC 2017) as a
// self-contained Go library: the mixed hash/explicit-table routing
// scheme, the LLFD/MinTable/MinMig/Mixed rebalance planners, the
// compact 6-dimensional statistics representation with HLHE
// discretization, a goroutine-based stream-processing engine substrate
// with the Fig. 5 pause/migrate/resume protocol, the Readj and PKG
// baselines, and a benchmark harness regenerating every table and
// figure of the paper's evaluation.
//
// Entry points:
//
//   - internal/core: the embedding API (Config, NewSystem, planners)
//   - cmd/benchrunner: regenerate any exhibit (-exp fig13)
//   - bench_test.go: the same exhibits as testing.B benchmarks
//   - examples/: runnable demonstration topologies
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
